type choice = { op : Ops.Op.t; measured : Config_space.measured }

type transpose = {
  containers : string list;
  from_layout : Layout.t;
  to_layout : Layout.t;
  cost : float;
}

type degraded_op = {
  d_op : string;
  d_reason : string;
  d_fallback : string;
  d_penalty : float;
}

type degradation = { degraded_ops : degraded_op list; time_penalty : float }

let no_degradation = { degraded_ops = []; time_penalty = 0.0 }

type selection = {
  forward : choice list;
  backward : choice list;
  transposes : transpose list;
  layouts : (string * Layout.t) list;
  forward_time : float;
  backward_time : float;
  total_time : float;
  sum_best_forward : float;
  degradation : degradation;
}

let volume_of program c =
  List.fold_left (fun a (_, d) -> a * d) 1 (Ops.Program.container_dims program c)

type boundary = {
  containers : string list;
  rep : string;
  rep_dims : (Axis.t * int) list;
  candidates : Layout.t list;
}

let make_boundary program containers =
  let rep =
    List.fold_left
      (fun best c ->
        if volume_of program c > volume_of program best then c else best)
      (List.hd containers) containers
  in
  let rep_dims = Ops.Program.container_dims program rep in
  {
    containers;
    rep;
    rep_dims;
    candidates = Layout.all (List.map fst rep_dims);
  }

let main_input program (first : Ops.Op.t) =
  let written =
    List.concat_map (fun (o : Ops.Op.t) -> o.writes) program.Ops.Program.ops
  in
  let inputs = List.filter (fun c -> not (List.mem c written)) first.reads in
  match inputs with
  | [] -> List.hd first.reads
  | c :: rest ->
      List.fold_left
        (fun best c ->
          if volume_of program c > volume_of program best then c else best)
        c rest

let boundaries program (fwd : Ops.Op.t list) =
  let n = List.length fwd in
  let arr = Array.of_list fwd in
  let source = make_boundary program [ main_input program arr.(0) ] in
  let interior =
    List.init (n - 1) (fun i ->
        let producer = arr.(i) and consumer = arr.(i + 1) in
        let shared =
          List.filter (fun c -> List.mem c consumer.reads) producer.writes
        in
        let containers =
          if shared <> [] then shared else producer.writes
        in
        make_boundary program containers)
  in
  let last = arr.(n - 1) in
  let read_by_someone c =
    List.exists (fun (o : Ops.Op.t) -> List.mem c o.reads) program.Ops.Program.ops
  in
  let outputs =
    match List.filter (fun c -> not (read_by_someone c)) last.writes with
    | [] -> last.writes
    | cs -> cs
  in
  Array.of_list ((source :: interior) @ [ make_boundary program outputs ])

(* Cost of physically permuting every container at a boundary. *)
let transpose_cost (device : Gpu.Device.t) program (b : boundary) =
  let bytes =
    2 * 2
    * List.fold_left (fun acc c -> acc + volume_of program c) 0 b.containers
  in
  (float_of_int bytes /. (device.mem_bandwidth *. 0.85)) +. device.launch_overhead

(* ------------------------------------------------------------------ *)
(* Degraded-mode fallbacks                                              *)
(* ------------------------------------------------------------------ *)

(* When an operator has no surviving measurements (a hole), selection falls
   back to a clean cost-model estimate of the framework-natural (default)
   configuration. The penalty reports what the hole costs versus the clean
   unconstrained best, which the analytic cost model can still price. *)
type estimate = {
  est : Config_space.measured;  (* default-config clean estimate *)
  est_best : float;  (* clean best over the whole space *)
}

let estimate_for db cache (op : Ops.Op.t) =
  match Hashtbl.find_opt cache op.Ops.Op.name with
  | Some e -> e
  | None ->
      let program = Perfdb.program db and device = Perfdb.device db in
      let est =
        Config_space.measure ~device program op
          (Config_space.default_config program op)
      in
      let est_best =
        List.fold_left
          (fun acc (m : Config_space.measured) -> Float.min acc m.time)
          est.Config_space.time
          (Config_space.measure_all ~device program op)
      in
      let e = { est; est_best } in
      Hashtbl.replace cache op.Ops.Op.name e;
      e

let hole_record db cache (op : Ops.Op.t) =
  let e = estimate_for db cache op in
  {
    d_op = op.Ops.Op.name;
    d_reason =
      Printf.sprintf "no surviving measurements (%d configurations quarantined)"
        (List.length (Perfdb.op_quarantine db op.Ops.Op.name));
    d_fallback = "cost-model estimate of the default configuration";
    d_penalty = Float.max 0.0 (e.est.Config_space.time -. e.est_best);
  }

let is_hole db name =
  match Perfdb.entries_opt db name with None | Some [] -> true | Some _ -> false

(* Fastest entry of [op] whose layouts assign [l_in] to [rep_in] and [l_out]
   to [rep_out]; buckets computed in one pass over the entries. When the
   operator does not actually read the incoming boundary (the schedule is
   not a strict consumer chain, e.g. sibling operators in an unfused
   program), the incoming layout is irrelevant and the bucket key uses a
   wildcard. *)
let wildcard = "*"

let edge_weights db (op : Ops.Op.t) ~rep_in ~rep_out =
  let in_relevant = List.mem rep_in op.reads in
  let table = Hashtbl.create 64 in
  List.iter
    (fun (m : Config_space.measured) ->
      let li =
        if in_relevant then
          Option.map Layout.to_string (List.assoc_opt rep_in m.layouts)
        else Some wildcard
      in
      match (li, List.assoc_opt rep_out m.layouts) with
      | Some li, Some lo ->
          let key = (li, Layout.to_string lo) in
          let current = Hashtbl.find_opt table key in
          if current = None || m.time < Option.get current then
            Hashtbl.replace table key m.time
      | _ -> ())
    (Option.value (Perfdb.entries_opt db op.name) ~default:[]);
  (table, in_relevant)

let constrain_gradients program constraints (op : Ops.Op.t) =
  List.iter
    (fun c ->
      if String.length c > 2 && String.sub c 0 2 = "d_" then begin
        let primal = String.sub c 2 (String.length c - 2) in
        match Hashtbl.find_opt constraints primal with
        | Some layout when not (Hashtbl.mem constraints c) ->
            let primal_dims = Ops.Program.container_dims program primal in
            let c_dims = Ops.Program.container_dims program c in
            if List.map fst primal_dims = List.map fst c_dims then
              Hashtbl.replace constraints c layout
        | _ -> ()
      end)
    (op.reads @ op.writes)

(* One operator's choice under the current constraints. The clean path
   (no quarantine, no hole) is exactly the seed behaviour: exact
   constraint match, else the unconstrained best. Only quarantine holes
   enable the degraded chain: nearest-layout entry (fewest violated
   constraints), then the cost-model estimate when nothing survived. *)
let pick_measured db cache degraded (op : Ops.Op.t) cs =
  if is_hole db op.Ops.Op.name then begin
    degraded := hole_record db cache op :: !degraded;
    (estimate_for db cache op).est
  end
  else
    match Perfdb.best_matching db op.Ops.Op.name ~constraints:cs with
    | Some m -> m
    | None ->
        if Perfdb.op_quarantine db op.Ops.Op.name = [] then
          Perfdb.best db op.Ops.Op.name
        else begin
          match Perfdb.nearest_matching db op.Ops.Op.name ~constraints:cs with
          | Some (m, v) ->
              let best = Perfdb.best db op.Ops.Op.name in
              degraded :=
                {
                  d_op = op.Ops.Op.name;
                  d_reason =
                    Printf.sprintf
                      "quarantine left the exact layout constraints \
                       unsatisfiable (%d violated)"
                      v;
                  d_fallback = "nearest-layout surviving entry";
                  d_penalty =
                    Float.max 0.0
                      (m.Config_space.time -. best.Config_space.time);
                }
                :: !degraded;
              m
          | None -> Perfdb.best db op.Ops.Op.name
        end

let repair_pass db cache degraded ?(initial = []) ops =
  let program = Perfdb.program db in
  let constraints = Hashtbl.create 64 in
  List.iter (fun (c, l) -> Hashtbl.replace constraints c l) initial;
  let choices =
    List.map
      (fun (op : Ops.Op.t) ->
        constrain_gradients program constraints op;
        let cs =
          Hashtbl.fold (fun c l acc -> (c, l) :: acc) constraints []
        in
        let measured = pick_measured db cache degraded op cs in
        List.iter
          (fun (c, l) ->
            if not (Hashtbl.mem constraints c) then
              Hashtbl.replace constraints c l)
          measured.Config_space.layouts;
        { op; measured })
      ops
  in
  let layouts = Hashtbl.fold (fun c l acc -> (c, l) :: acc) constraints [] in
  (choices, List.sort (fun (a, _) (b, _) -> String.compare a b) layouts)

let sum_time choices =
  List.fold_left (fun acc c -> acc +. c.measured.Config_space.time) 0.0 choices

let degradation_of degraded =
  let ops = List.rev degraded in
  {
    degraded_ops = ops;
    time_penalty = List.fold_left (fun a d -> a +. d.d_penalty) 0.0 ops;
  }

(* [sum_best_forward]: each forward op's unconstrained best; holes fall
   back to the clean cost-model bound so the figure stays comparable. *)
let lower_bound db cache fwd =
  List.fold_left
    (fun acc (op : Ops.Op.t) ->
      acc
      +.
      match Perfdb.best_opt db op.Ops.Op.name with
      | Some m -> m.Config_space.time
      | None -> (estimate_for db cache op).est_best)
    0.0 fwd

let select db =
  let program = Perfdb.program db in
  let fwd = Ops.Program.forward_ops program in
  let bwd = Ops.Program.backward_ops program in
  if fwd = [] then
    invalid_arg
      "Selector.select: program has no forward operators; selection needs at \
       least one non-backward op (check Ops.Program.forward_ops on your \
       program)";
  let bs = boundaries program fwd in
  let device = Perfdb.device db in
  let cache = Hashtbl.create 8 in
  let degraded = ref [] in
  let graph = Sssp.create () in
  let node_ids =
    Array.map
      (fun b -> List.map (fun l -> (l, Sssp.add_node graph (b.rep, l))) b.candidates)
      bs
  in
  let src = Sssp.add_node graph ("source", []) in
  let dst = Sssp.add_node graph ("sink", []) in
  List.iter (fun (_, id) -> Sssp.add_edge graph ~src ~dst:id 0.0) node_ids.(0);
  List.iter
    (fun (_, id) -> Sssp.add_edge graph ~src:id ~dst 0.0)
    node_ids.(Array.length node_ids - 1);
  (* operator edges; a hole contributes layout-agnostic estimate edges so
     the layered graph stays connected *)
  List.iteri
    (fun i (op : Ops.Op.t) ->
      if is_hole db op.name then begin
        let w = (estimate_for db cache op).est.Config_space.time in
        List.iter
          (fun (_, id_in) ->
            List.iter
              (fun (_, id_out) -> Sssp.add_edge graph ~src:id_in ~dst:id_out w)
              node_ids.(i + 1))
          node_ids.(i)
      end
      else begin
        let weights, in_relevant =
          edge_weights db op ~rep_in:bs.(i).rep ~rep_out:bs.(i + 1).rep
        in
        List.iter
          (fun (li, id_in) ->
            let li_key = if in_relevant then Layout.to_string li else wildcard in
            List.iter
              (fun (lo, id_out) ->
                match Hashtbl.find_opt weights (li_key, Layout.to_string lo) with
                | Some w -> Sssp.add_edge graph ~src:id_in ~dst:id_out w
                | None -> ())
              node_ids.(i + 1))
          node_ids.(i)
      end)
    fwd;
  (* transpose edges inside interior boundaries *)
  Array.iteri
    (fun i b ->
      if i > 0 && i < Array.length bs - 1 then begin
        let cost = transpose_cost device program b in
        List.iter
          (fun (l1, id1) ->
            List.iter
              (fun (l2, id2) ->
                if not (Layout.equal l1 l2) then
                  Sssp.add_edge graph ~src:id1 ~dst:id2 cost)
              node_ids.(i))
          node_ids.(i)
      end)
    bs;
  let _, path =
    match Sssp.shortest_path graph ~src ~dst with
    | Some r -> r
    | None ->
        invalid_arg
          "Selector.select: no feasible configuration path through the \
           layered boundary graph; the database is likely missing every \
           entry of some operator (inspect Perfdb.holes / Perfdb.quarantine \
           and re-sweep, or lower the fault rates)"
  in
  (* Decode boundary layout choices (and transposes) from the path. *)
  let layer_of = Hashtbl.create 64 in
  Array.iteri
    (fun i ids -> List.iter (fun (l, id) -> Hashtbl.replace layer_of id (i, l)) ids)
    node_ids;
  let chosen = Hashtbl.create 16 in
  let transposes = ref [] in
  let rec walk = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
        (match (Hashtbl.find_opt layer_of a, Hashtbl.find_opt layer_of b) with
        | Some (ia, la), Some (ib, lb) when ia = ib && not (Layout.equal la lb)
          ->
            transposes :=
              {
                containers = bs.(ia).containers;
                from_layout = la;
                to_layout = lb;
                cost = transpose_cost device program bs.(ia);
              }
              :: !transposes
        | _ -> ());
        (match Hashtbl.find_opt layer_of b with
        | Some (ib, lb) -> Hashtbl.replace chosen ib lb
        | None -> ());
        walk rest
  in
  (match path with
  | first :: _ ->
      (match Hashtbl.find_opt layer_of first with
      | Some (i0, l0) -> Hashtbl.replace chosen i0 l0
      | None -> ())
  | [] -> ());
  walk path;
  (* Seed the repair pass with the boundary layouts (tied across the
     boundary's containers through the positional isomorphism). *)
  let initial =
    Array.to_list bs
    |> List.mapi (fun i b -> (i, b))
    |> List.concat_map (fun (i, b) ->
           match Hashtbl.find_opt chosen i with
           | None -> []
           | Some layout ->
               List.map
                 (fun c ->
                   ( c,
                     Config_space.iso_layout ~rep_dims:b.rep_dims
                       ~target_dims:(Ops.Program.container_dims program c)
                       layout ))
                 b.containers)
  in
  let all_choices, layouts =
    repair_pass db cache degraded ~initial (fwd @ bwd)
  in
  let bwd_choices =
    List.filteri (fun i _ -> i >= List.length fwd) all_choices
  in
  let fwd_choices =
    List.filteri (fun i _ -> i < List.length fwd) all_choices
  in
  let transposes = List.rev !transposes in
  let transpose_time = List.fold_left (fun a t -> a +. t.cost) 0.0 transposes in
  let forward_time = sum_time fwd_choices +. transpose_time in
  let backward_time = sum_time bwd_choices in
  {
    forward = fwd_choices;
    backward = bwd_choices;
    transposes;
    layouts;
    forward_time;
    backward_time;
    total_time = forward_time +. backward_time;
    sum_best_forward = lower_bound db cache fwd;
    degradation = degradation_of !degraded;
  }

let greedy db =
  let program = Perfdb.program db in
  let fwd = Ops.Program.forward_ops program in
  let bwd = Ops.Program.backward_ops program in
  let device = Perfdb.device db in
  let cache = Hashtbl.create 8 in
  let degraded = ref [] in
  let pick (op : Ops.Op.t) =
    match Perfdb.best_opt db op.Ops.Op.name with
    | Some m -> { op; measured = m }
    | None ->
        degraded := hole_record db cache op :: !degraded;
        { op; measured = (estimate_for db cache op).est }
  in
  let fwd_choices = List.map pick fwd in
  let bwd_choices = List.map pick bwd in
  let all = fwd_choices @ bwd_choices in
  (* first writer fixes each container's layout; disagreeing consumers pay
     a transpose *)
  let fixed = Hashtbl.create 64 in
  let transposes = ref [] in
  List.iter
    (fun ch ->
      List.iter
        (fun (c, l) ->
          match Hashtbl.find_opt fixed c with
          | None -> Hashtbl.replace fixed c l
          | Some l' when Layout.equal l l' -> ()
          | Some l' ->
              let bytes = 2 * 2 * volume_of program c in
              transposes :=
                {
                  containers = [ c ];
                  from_layout = l';
                  to_layout = l;
                  cost =
                    (float_of_int bytes /. (device.mem_bandwidth *. 0.85))
                    +. device.launch_overhead;
                }
                :: !transposes)
        ch.measured.Config_space.layouts)
    all;
  let transposes = List.rev !transposes in
  let transpose_time = List.fold_left (fun a t -> a +. t.cost) 0.0 transposes in
  let layouts =
    Hashtbl.fold (fun c l acc -> (c, l) :: acc) fixed []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let forward_time = sum_time fwd_choices +. transpose_time in
  let backward_time = sum_time bwd_choices in
  {
    forward = fwd_choices;
    backward = bwd_choices;
    transposes;
    layouts;
    forward_time;
    backward_time;
    total_time = forward_time +. backward_time;
    sum_best_forward = sum_time fwd_choices;
    degradation = degradation_of !degraded;
  }

let graph_dot ?(max_ops = 2) db =
  let program = Perfdb.program db in
  let fwd = Ops.Program.forward_ops program in
  let n = min max_ops (List.length fwd) in
  let fwd_n = List.filteri (fun i _ -> i < n) fwd in
  let bs = boundaries program (Ops.Program.forward_ops program) in
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph selection {\n  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n";
  pf "  source [shape=circle];\n  target [shape=circle];\n";
  let node_name i l = Printf.sprintf "b%d_%s" i (String.concat "" l) in
  for i = 0 to n do
    List.iter
      (fun l ->
        pf "  %s [label=\"%s\\n%s\"];\n" (node_name i l) (bs.(i)).rep
          (Layout.to_string l))
      (bs.(i)).candidates
  done;
  List.iter
    (fun l -> pf "  source -> %s [label=\"0\"];\n" (node_name 0 l))
    (bs.(0)).candidates;
  List.iteri
    (fun i (op : Ops.Op.t) ->
      let weights, in_relevant =
        edge_weights db op ~rep_in:(bs.(i)).rep ~rep_out:(bs.(i + 1)).rep
      in
      List.iter
        (fun li ->
          let li_key = if in_relevant then Layout.to_string li else wildcard in
          List.iter
            (fun lo ->
              match Hashtbl.find_opt weights (li_key, Layout.to_string lo) with
              | Some w ->
                  pf "  %s -> %s [label=\"%s: %.0f us\"];\n" (node_name i li)
                    (node_name (i + 1) lo) op.name (w *. 1e6)
              | None -> ())
            (bs.(i + 1)).candidates)
        (bs.(i)).candidates)
    fwd_n;
  List.iter
    (fun l -> pf "  %s -> target [label=\"0\"];\n" (node_name n l))
    (bs.(n)).candidates;
  pf "}\n";
  Buffer.contents buf

let pp_degradation ppf d =
  if d.degraded_ops = [] then Format.fprintf ppf "no degradation"
  else begin
    Format.fprintf ppf
      "@[<v>%d operators degraded, +%.1f us estimated penalty:"
      (List.length d.degraded_ops)
      (d.time_penalty *. 1e6);
    List.iter
      (fun o ->
        Format.fprintf ppf "@,  %-12s %s -> %s (+%.1f us)" o.d_op o.d_reason
          o.d_fallback (o.d_penalty *. 1e6))
      d.degraded_ops;
    Format.fprintf ppf "@]"
  end

let pp_selection ppf s =
  Format.fprintf ppf
    "@[<v>forward %.3f ms (%d ops, %d transposes), backward %.3f ms (%d ops), \
     total %.3f ms; per-op forward lower bound %.3f ms%a@]"
    (s.forward_time *. 1e3) (List.length s.forward) (List.length s.transposes)
    (s.backward_time *. 1e3) (List.length s.backward) (s.total_time *. 1e3)
    (s.sum_best_forward *. 1e3)
    (fun ppf d ->
      if d.degraded_ops <> [] then Format.fprintf ppf "@,%a" pp_degradation d)
    s.degradation

(** Performance database: every measured configuration of every operator of
    a program (paper §V's exhaustive benchmark sweep, feeding §VI-A's
    configuration selection).

    The sweep is resilient: measurements run under an optional fault model
    ({!Gpu.Faults}), transient failures are retried with exponential
    backoff, noisy timings are aggregated robustly (median of k with a MAD
    outlier cut), permanently failing configurations are quarantined, and
    the partially built database can be checkpointed to disk so an
    interrupted sweep resumes exactly where it stopped. With
    [Gpu.Faults.none] (the default) the sweep is byte-identical to a plain
    exhaustive measurement pass. *)

type t

(** One quarantined (permanently failing or retries-exhausted)
    configuration. *)
type quarantined = {
  q_op : string;
  q_config : string;  (** {!Config_space.config_key} of the configuration *)
  q_reason : string;
  q_attempts : int;
}

type sweep_stats = {
  measurements : int;  (** successful measurement attempts *)
  retries : int;
  transient_failures : int;
  quarantined_configs : int;
  backoff_time : float;  (** simulated backoff wait, s *)
  resumed_ops : int;  (** operators restored from a checkpoint *)
}

val zero_stats : sweep_stats

(** Raised by [build ~interrupt_after:n] once [n] operators have been swept
    (and checkpointed) in this run — a deterministic stand-in for a sweep
    killed mid-flight. Carries the checkpoint path ([""] if none). *)
exception Interrupted of string

(** [build ?quality ?faults ?repeats ?max_retries ?checkpoint
    ?interrupt_after ~device program] sweeps the configuration space of
    each operator.

    - [faults] (default {!Gpu.Faults.none}): the measurement fault model.
    - [repeats]: successful samples per configuration (default 5 when
      [faults.noise_sigma > 0], else 1), aggregated by MAD-filtered median.
    - [max_retries] (default 4): consecutive transient failures tolerated
      per configuration before it is quarantined; each retry accrues
      {!Gpu.Faults.backoff} into [stats.backoff_time].
    - [checkpoint]: path of the resume file. Written atomically after every
      operator, loaded (and validated against device/program/quality/fault
      fingerprints) when it exists, deleted on successful completion.
    - [interrupt_after]: raise {!Interrupted} after sweeping that many
      operators this run (testing hook for interrupt/resume). *)
val build :
  ?quality:float -> ?faults:Gpu.Faults.spec -> ?repeats:int
  -> ?max_retries:int -> ?checkpoint:string -> ?interrupt_after:int
  -> device:Gpu.Device.t -> Ops.Program.t -> t

(** The identity string a checkpoint is validated against: device name,
    quality, fault-spec fingerprint, and the program's operator list.
    Exposed so tests can assert that serial and parallel sweeps agree on
    (and interoperate through) the same checkpoint identity. *)
val fingerprint :
  ?quality:float -> faults:Gpu.Faults.spec -> device:Gpu.Device.t
  -> Ops.Program.t -> string

val device : t -> Gpu.Device.t
val program : t -> Ops.Program.t
val op_names : t -> string list

(** [entries db op] raises [Invalid_argument] (naming the known operators)
    when [op] is not in the database; an empty list marks a hole. *)
val entries : t -> string -> Config_space.measured list

val entries_opt : t -> string -> Config_space.measured list option

(** Every quarantined configuration of the sweep. *)
val quarantine : t -> quarantined list

val op_quarantine : t -> string -> quarantined list
val stats : t -> sweep_stats

(** Operators with no surviving measurements (every configuration
    quarantined, or not yet swept in a resumed run). *)
val holes : t -> string list

val complete : t -> bool

(** [best db op] is the fastest configuration regardless of layouts.
    Raises [Invalid_argument] with a remediation hint when [op] is unknown
    or a hole; use [best_opt] in degraded paths. *)
val best : t -> string -> Config_space.measured

val best_opt : t -> string -> Config_space.measured option

(** [best_matching db op ~constraints] is the fastest entry consistent with
    the layout constraints: for every [(container, layout)] pair that the
    entry also assigns, the layouts must agree. [None] when no entry
    qualifies. *)
val best_matching :
  t -> string -> constraints:(string * Layout.t) list
  -> Config_space.measured option

(** [nearest_matching db op ~constraints] is the entry violating the fewest
    layout constraints (ties broken by time) together with its violation
    count — the degraded-mode fallback when quarantine holes make the exact
    constraints unsatisfiable. [None] when the operator has no entries. *)
val nearest_matching :
  t -> string -> constraints:(string * Layout.t) list
  -> (Config_space.measured * int) option

(** [punched db ops] returns a copy of [db] with the entries of [ops]
    removed and quarantine records added — deliberate holes for degraded-
    mode testing and fault campaigns. *)
val punched : t -> string list -> t

(** [sum_best db] adds up each operator's unconstrained best time — the
    lower bound the paper compares its global selection against (within 4%,
    §VI-A). Holes contribute nothing. *)
val sum_best : t -> float

(** [quantiles db op ps] returns time quantiles (e.g. [[0.; 0.25; 0.5; 1.]])
    of the configuration distribution — the violin summaries of Figs. 4/5. *)
val quantiles : t -> string -> float list -> float list

(** [export_csv db] serializes every measured configuration as CSV
    (operator, configuration kind and knobs, per-container layouts, time in
    microseconds) for external plotting of the Fig. 4/5 distributions. *)
val export_csv : t -> string

val pp_stats : Format.formatter -> sweep_stats -> unit

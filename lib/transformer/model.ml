type t = {
  hp : Hparams.t;
  vocab : int;
  n_layers : int;
  embedding : Dense.t;
  layer_params : (string * Dense.t) list array;
}

let create ?(n_layers = 2) ?(vocab = 16) (hp : Hparams.t) =
  let prng = Prng.of_key hp.seed "model" in
  {
    hp;
    vocab;
    n_layers;
    embedding =
      (let e =
         Dense.randn prng [ ("v", vocab); ("i", hp.embed) ] ~stddev:0.05
       in
       (* The tied output head contracts the embedding every step. *)
       Einsum.register_prepacked e;
       e);
    layer_params =
      Array.init n_layers (fun layer ->
          let hp_l =
            { hp with seed = Int64.add hp.seed (Int64.of_int (layer + 1)) }
          in
          Params.init hp_l);
  }

type cache = {
  tokens : int array array;
  x0 : Dense.t;
  layer_envs : Ops.Op.env array;
  y : Dense.t;
  logits : Dense.t;
}

let embed_with m hp tokens =
  Dense.init (Hparams.dims_x hp) (fun idx ->
      let b = List.assoc "b" idx
      and j = List.assoc "j" idx
      and i = List.assoc "i" idx in
      Dense.get m.embedding [ ("v", tokens.(b).(j)); ("i", i) ])

(* The layer forward as a compiled plan. The training backward reads the
   forward's retained intermediates out of the layer env (and appends its
   own), so the regime is passthrough: no rewriting, every intermediate
   materialized. Structure depends only on (hp, activation, causal) — the
   plan cache makes this compile once per geometry and execute many
   (every layer of every step re-runs zero passes). *)
let layer_plan hp ~activation ~causal =
  let fwd =
    Ops.Program.make ~containers:(Encoder.containers hp)
      (Encoder.forward_ops ~activation ~causal hp)
  in
  Compile.Compiled.compile ~name_table:Encoder.kernel_names
    (Compile.Regime.passthrough ()) fwd

(* Warm the plan cache for a geometry before the hot loop starts. *)
let precompile ?(causal = false) ?(activation = `Relu) m ~batch ~seq =
  let hp = { m.hp with Hparams.batch; seq } in
  ignore (layer_plan hp ~activation ~causal)

(* Like [forward], but batch/seq follow the token array and the layer
   program can be the causal decoder block ([forward] is the training
   special case). Serves as the full-recompute decoding oracle. *)
let forward_with ?(causal = false) ?(activation = `Relu) m ~tokens =
  let b = Array.length tokens in
  if b = 0 then invalid_arg "Model.forward_with: empty batch";
  let hp =
    { m.hp with Hparams.batch = b; seq = Array.length tokens.(0) }
  in
  let x0 = embed_with m hp tokens in
  let x = ref x0 in
  let plan = layer_plan hp ~activation ~causal in
  let layer_envs =
    Array.init m.n_layers (fun layer ->
        let env =
          Compile.Compiled.execute plan (("x", !x) :: m.layer_params.(layer))
        in
        x := Ops.Op.lookup env "y";
        env)
  in
  let y = !x in
  let logits = Einsum.eval "vi,ibj->vbj" [ m.embedding; y ] in
  { tokens; x0; layer_envs; y; logits }

let forward m ~tokens = forward_with m ~tokens

type grads = {
  d_embedding : Dense.t;
  d_layers : (string * Dense.t) list array;
}

let backward m cache ~d_logits =
  let hp = m.hp in
  (* head: logits = W_e y, with W_e the tied embedding *)
  let d_y = Einsum.eval "vi,vbj->ibj" [ m.embedding; d_logits ] in
  let d_emb_head = Einsum.eval "ibj,vbj->vi" [ cache.y; d_logits ] in
  let d_layers = Array.make m.n_layers [] in
  let d = ref d_y in
  for layer = m.n_layers - 1 downto 0 do
    let env = cache.layer_envs.(layer) in
    Ops.Op.store env "d_y" !d;
    Ops.Op.run_all (Encoder.backward_ops hp) env;
    d_layers.(layer) <-
      List.map
        (fun p -> (p, Ops.Op.lookup env (Encoder.grad p)))
        Encoder.param_names;
    d := Ops.Op.lookup env "d_x"
  done;
  (* scatter the input gradient into the embedding rows *)
  let scatter = Dense.zeros [ ("v", m.vocab); ("i", hp.embed) ] in
  Dense.iter !d (fun idx v ->
      let b = List.assoc "b" idx
      and j = List.assoc "j" idx
      and i = List.assoc "i" idx in
      let coord = [ ("v", cache.tokens.(b).(j)); ("i", i) ] in
      Dense.set scatter coord (Dense.get scatter coord +. v));
  { d_embedding = Dense.add d_emb_head scatter; d_layers }

let cross_entropy ~logits ~targets =
  let shape = Dense.shape logits in
  let v = Shape.size shape "v"
  and b = Shape.size shape "b"
  and j = Shape.size shape "j" in
  let count = float_of_int (b * j) in
  let d = Dense.zeros (Shape.to_list shape) in
  let loss = ref 0.0 in
  for bi = 0 to b - 1 do
    for ji = 0 to j - 1 do
      let col vi = Dense.get logits [ ("v", vi); ("b", bi); ("j", ji) ] in
      let mx = ref neg_infinity in
      for vi = 0 to v - 1 do
        mx := Float.max !mx (col vi)
      done;
      let z = ref 0.0 in
      for vi = 0 to v - 1 do
        z := !z +. exp (col vi -. !mx)
      done;
      let target = targets.(bi).(ji) in
      loss := !loss -. ((col target -. !mx -. log !z) /. count);
      for vi = 0 to v - 1 do
        let p = exp (col vi -. !mx) /. !z in
        let onehot = if vi = target then 1.0 else 0.0 in
        Dense.set d
          [ ("v", vi); ("b", bi); ("j", ji) ]
          ((p -. onehot) /. count)
      done
    done
  done;
  (!loss, d)

let update_in_place p g ~lr =
  let pd = Dense.unsafe_data p and gd = Dense.unsafe_data (Dense.align g p) in
  Array.iteri (fun i v -> pd.(i) <- v -. (lr *. gd.(i))) (Array.copy pd);
  (* the weight changed under any prepacked GEMM images: drop them *)
  Einsum.invalidate_prepacked p

let sgd_step m grads ~lr =
  update_in_place m.embedding grads.d_embedding ~lr;
  Array.iteri
    (fun layer params ->
      List.iter
        (fun (name, p) ->
          match List.assoc_opt name grads.d_layers.(layer) with
          | Some g -> update_in_place p g ~lr
          | None -> ())
        params)
    m.layer_params

type adam_state = {
  mutable step : int;
  m_embedding : Dense.t;
  v_embedding : Dense.t;
  m_layers : (string * Dense.t) list array;
  v_layers : (string * Dense.t) list array;
}

let adam_init m =
  let zeros_like params =
    List.map (fun (n, p) -> (n, Dense.zeros (Shape.to_list (Dense.shape p)))) params
  in
  {
    step = 0;
    m_embedding = Dense.zeros (Shape.to_list (Dense.shape m.embedding));
    v_embedding = Dense.zeros (Shape.to_list (Dense.shape m.embedding));
    m_layers = Array.map zeros_like m.layer_params;
    v_layers = Array.map zeros_like m.layer_params;
  }

let adam_update ~beta1 ~beta2 ~eps ~lr ~step p g m1 v =
  let pd = Dense.unsafe_data p in
  let gd = Dense.unsafe_data (Dense.align g p) in
  (* moment buffers are created with exactly p's storage order, so their raw
     data can be mutated in place *)
  let md = Dense.unsafe_data m1 in
  let vd = Dense.unsafe_data v in
  let c1 = 1.0 -. (beta1 ** float_of_int step) in
  let c2 = 1.0 -. (beta2 ** float_of_int step) in
  for i = 0 to Array.length pd - 1 do
    md.(i) <- (beta1 *. md.(i)) +. ((1.0 -. beta1) *. gd.(i));
    vd.(i) <- (beta2 *. vd.(i)) +. ((1.0 -. beta2) *. gd.(i) *. gd.(i));
    let mhat = md.(i) /. c1 and vhat = vd.(i) /. c2 in
    pd.(i) <- pd.(i) -. (lr *. mhat /. (sqrt vhat +. eps))
  done;
  Einsum.invalidate_prepacked p

let adam_step ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) m state grads ~lr =
  state.step <- state.step + 1;
  let step = state.step in
  adam_update ~beta1 ~beta2 ~eps ~lr ~step m.embedding grads.d_embedding
    state.m_embedding state.v_embedding;
  Array.iteri
    (fun layer params ->
      List.iter
        (fun (name, p) ->
          match List.assoc_opt name grads.d_layers.(layer) with
          | Some g ->
              adam_update ~beta1 ~beta2 ~eps ~lr ~step p g
                (List.assoc name state.m_layers.(layer))
                (List.assoc name state.v_layers.(layer))
          | None -> ())
        params)
    m.layer_params

(* --- snapshot / restore (training checkpoints) ---------------------- *)

(* Plain-data copies of every parameter (and, for Adam, moment) buffer:
   marshalable, and restored by blitting back into the live tensors so
   aliases (the weight-tied output head reads [embedding] itself) stay
   intact. *)

type snapshot = {
  s_embedding : float array;
  s_layers : (string * float array) list array;
}

let snapshot m =
  {
    s_embedding = Array.copy (Dense.unsafe_data m.embedding);
    s_layers =
      Array.map
        (List.map (fun (n, p) -> (n, Array.copy (Dense.unsafe_data p))))
        m.layer_params;
  }

let blit_into ~what src dst =
  if Array.length src <> Array.length dst then
    invalid_arg
      (Printf.sprintf
         "Model.restore: snapshot buffer %s has %d elements, model has %d \
          (snapshot from a different model?)"
         what (Array.length src) (Array.length dst));
  Array.blit src 0 dst 0 (Array.length src)

let restore m s =
  blit_into ~what:"embedding" s.s_embedding (Dense.unsafe_data m.embedding);
  Einsum.invalidate_prepacked m.embedding;
  if Array.length s.s_layers <> Array.length m.layer_params then
    invalid_arg "Model.restore: snapshot layer count differs from model";
  Array.iteri
    (fun layer params ->
      List.iter
        (fun (name, p) ->
          match List.assoc_opt name s.s_layers.(layer) with
          | Some buf ->
              blit_into ~what:name buf (Dense.unsafe_data p);
              Einsum.invalidate_prepacked p
          | None ->
              invalid_arg
                ("Model.restore: snapshot is missing parameter " ^ name))
        params)
    m.layer_params

type adam_snapshot = {
  a_step : int;
  a_m_embedding : float array;
  a_v_embedding : float array;
  a_m_layers : (string * float array) list array;
  a_v_layers : (string * float array) list array;
}

let adam_snapshot st =
  let copy_layers = Array.map (List.map (fun (n, p) -> (n, Array.copy (Dense.unsafe_data p)))) in
  {
    a_step = st.step;
    a_m_embedding = Array.copy (Dense.unsafe_data st.m_embedding);
    a_v_embedding = Array.copy (Dense.unsafe_data st.v_embedding);
    a_m_layers = copy_layers st.m_layers;
    a_v_layers = copy_layers st.v_layers;
  }

let adam_restore st s =
  st.step <- s.a_step;
  blit_into ~what:"adam.m_embedding" s.a_m_embedding
    (Dense.unsafe_data st.m_embedding);
  blit_into ~what:"adam.v_embedding" s.a_v_embedding
    (Dense.unsafe_data st.v_embedding);
  let restore_layers snap live =
    Array.iteri
      (fun layer params ->
        List.iter
          (fun (name, p) ->
            match List.assoc_opt name snap.(layer) with
            | Some buf -> blit_into ~what:("adam." ^ name) buf (Dense.unsafe_data p)
            | None ->
                invalid_arg
                  ("Model.restore: adam snapshot is missing moment " ^ name))
          params)
      live
  in
  restore_layers s.a_m_layers st.m_layers;
  restore_layers s.a_v_layers st.v_layers

let parameter_count m =
  Dense.volume m.embedding
  + Array.fold_left
      (fun acc params ->
        List.fold_left (fun acc (_, p) -> acc + Dense.volume p) acc params)
      0 m.layer_params

(* --- inference: KV-cached incremental decoding ----------------------- *)

type session = {
  sess_model : t;
  kv : Mha.cache array;  (* one per layer *)
}

let new_session m =
  {
    sess_model = m;
    kv = Array.init m.n_layers (fun _ -> Mha.cache_create m.hp);
  }

let session_len s = if Array.length s.kv = 0 then 0 else Mha.cache_len s.kv.(0)

let session_floats s =
  Array.fold_left (fun acc c -> acc + Mha.cache_floats c) 0 s.kv

(* One incremental decode step for a ragged batch of sessions: feeds token
   [tokens.(b)] to [sessions.(b)] and returns the logits column, dims
   (v, b, j=1). New K/V columns are staged per layer and committed only
   after every layer has succeeded, so a mid-step crash or deadline abort
   leaves the sessions exactly as they were. *)
let decode_batch m sessions ~tokens =
  let nb = Array.length sessions in
  if nb = 0 then invalid_arg "Model.decode_batch: empty batch";
  if Array.length tokens <> nb then
    invalid_arg "Model.decode_batch: sessions/tokens length mismatch";
  Array.iter
    (fun s ->
      if s.sess_model != m then
        invalid_arg "Model.decode_batch: session belongs to a different model")
    sessions;
  if m.hp.Hparams.dropout_p <> 0.0 then
    invalid_arg "Model.decode_batch: requires dropout_p = 0 (inference)";
  let hp = { m.hp with Hparams.batch = nb; seq = 1 } in
  let x0 =
    Dense.init (Hparams.dims_x hp) (fun idx ->
        let b = List.assoc "b" idx and i = List.assoc "i" idx in
        Dense.get m.embedding [ ("v", tokens.(b)); ("i", i) ])
  in
  let x = ref x0 in
  let staged =
    Array.init m.n_layers (fun layer ->
        let caches = Array.map (fun s -> s.kv.(layer)) sessions in
        let y, knew, vnew =
          Decoder.cached_step hp ~params:m.layer_params.(layer) ~caches !x
        in
        x := y;
        (knew, vnew))
  in
  Array.iteri
    (fun layer (knew, vnew) ->
      Array.iteri
        (fun b s -> Mha.cache_append s.kv.(layer) ~k:knew ~v:vnew ~b)
        sessions)
    staged;
  Einsum.eval "vi,ibj->vbj" [ m.embedding; !x ]

(* Slot b's vocabulary column at the last position of a logits tensor. *)
let logits_column logits ~b =
  let shape = Dense.shape logits in
  let v = Shape.size shape "v" and j = Shape.size shape "j" in
  Array.init v (fun vi -> Dense.get logits [ ("v", vi); ("b", b); ("j", j - 1) ])

(* Full-recompute oracle: run the causal decoder stack over the whole
   prefix and return the final position's vocabulary column. The KV-cached
   path must reproduce this bitwise (test_serve checks it). *)
let decode_oracle m ~prompt =
  if Array.length prompt = 0 then
    invalid_arg "Model.decode_oracle: empty prompt";
  if m.hp.Hparams.dropout_p <> 0.0 then
    invalid_arg "Model.decode_oracle: requires dropout_p = 0 (inference)";
  let cache = forward_with ~causal:true ~activation:`Gelu m ~tokens:[| prompt |] in
  logits_column cache.logits ~b:0

(* Greedy sampling: lowest index wins ties, so generation is deterministic
   on both the cached and the oracle path. *)
let argmax col =
  let best = ref 0 in
  Array.iteri (fun i v -> if v > col.(!best) then best := i) col;
  !best

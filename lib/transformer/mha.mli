(** Standalone multi-head self-attention (paper Fig. 1, Table IV).

    The program is the attention slice of the encoder: the Q/K/V input
    projections (with a choice of algebraic fusion), input biases, QK^T,
    scaled softmax with dropout, gamma, the output projection and its bias
    — plus the corresponding backward operators. Input containers are [x]
    and the output cotangent [d_attn_b]. *)

val program : ?variant:Encoder.qkv_variant -> Hparams.t -> Ops.Program.t
val forward_program : ?variant:Encoder.qkv_variant -> Hparams.t -> Ops.Program.t

(** [run hp ~x ~d_out ~params] interprets the program; the output is in
    container ["attn_b"], the input gradient in ["d_x_attn"]. *)
val run :
  Hparams.t -> x:Dense.t -> d_out:Dense.t -> params:(string * Dense.t) list
  -> Ops.Op.env

(** Parameters used by MHA (subset of {!Encoder.param_names}). *)
val param_names : string list

val kernel_names : (string list * string) list

(** {1 KV cache — incremental decoding}

    Per-session, per-layer store of the biased K/V projections of every
    token decoded so far, so step [t] computes only the new token's
    projections and attends against the cache: O(L) bytes moved per token
    instead of the O(L^2) of a full recompute. The full-recompute path
    ({!Decoder.program} run over the whole prefix) stays in-tree as the
    oracle; [attend] is bitwise equal to it at [dropout_p = 0]. *)

type cache

val cache_create : Hparams.t -> cache
val cache_len : cache -> int

(** Floats resident in the cache's buffers (for memory accounting). *)
val cache_floats : cache -> int

(** [cache_append c ~k ~v ~b] pushes slot [b]'s column of a step's biased
    K/V projections (dims [(p,h,b,k=1)] / [(w,h,b,k=1)]). *)
val cache_append : cache -> k:Dense.t -> v:Dense.t -> b:int -> unit

(** [attend hp ~params ~caches x] is one incremental attention step over a
    ragged batch: [x] is the new-token hidden column (dims [(i,b,j=1)]),
    slot [b] of which belongs to [caches.(b)]. Returns
    [(attn_b, new K column, new V column)]; the caller commits the columns
    with {!cache_append} after the whole layer stack succeeds, so an
    aborted step leaves sessions untouched. *)
val attend :
  Hparams.t -> params:(string * Dense.t) list -> caches:cache array
  -> Dense.t -> Dense.t * Dense.t * Dense.t

(** [context hp ?causal ~q ~k ~v ()] is the full-sequence attention
    interior [softmax(scale * QK^T + causal mask) . V] (dims
    [(w,h,b,j)]) through the streaming tiled kernel ({!Flashattn}) — the
    prefill counterpart of {!attend}. [q]/[k] carry dims
    [(p,h,b,j)]/[(p,h,b,k)], [v] [(w,h,b,k)]. Runs under the kernel guard
    with the naive einsum + masked-softmax chain as oracle fallback; with
    multi-tile streaming the result is within ulps of that oracle. *)
val context :
  Hparams.t -> ?causal:bool -> q:Dense.t -> k:Dense.t -> v:Dense.t -> unit
  -> Dense.t

(** A tiny end-to-end training loop over the stacked encoder model: a
    synthetic token-reconstruction task trained with SGD. Exists to
    demonstrate (and test) that the operator programs are a working
    training substrate, not just a benchmark subject. *)

type history = {
  losses : float array;  (** loss after each step *)
  initial_loss : float;
  final_loss : float;
}

type optimizer = Sgd | Adam

exception Interrupted of string
(** Raised by the [?interrupt_after] simulated crash; carries the
    checkpoint path (mirrors [Perfdb.Interrupted]). *)

(** [random_batch prng ~vocab ~batch ~seq] draws token sequences. *)
val random_batch :
  Prng.t -> vocab:int -> batch:int -> seq:int -> int array array

(** [step m ~tokens ~targets ~lr] runs forward, loss, backward, SGD update;
    returns the loss before the update. *)
val step :
  Model.t -> tokens:int array array -> targets:int array array -> lr:float
  -> float

(** [train ?optimizer ?checkpoint ?interrupt_after m ~steps ~lr prng]
    trains on the reconstruction task (targets = inputs) with fresh
    batches each step; [Sgd] by default.

    With [?checkpoint:path], every completed step writes a crash-safe
    (fsync-then-rename) checkpoint holding the step count, losses, PRNG
    counter, and bitwise copies of all parameters and Adam moments,
    fingerprint-bound to the run shape (model geometry, optimizer,
    [steps], [lr]). If [path] exists when [train] starts, the run resumes
    from it — model, optimizer state, and PRNG restored in place — and
    produces a final model bitwise identical to an uninterrupted run. The
    file is removed on completion. [?interrupt_after:n] raises
    {!Interrupted} after [n] steps complete in this invocation (after
    their checkpoint is on disk), simulating a crash for tests. *)
val train :
  ?optimizer:optimizer ->
  ?checkpoint:string ->
  ?interrupt_after:int ->
  Model.t ->
  steps:int ->
  lr:float ->
  Prng.t ->
  history

type history = {
  losses : float array;
  initial_loss : float;
  final_loss : float;
}

type optimizer = Sgd | Adam

exception Interrupted of string

let random_batch prng ~vocab ~batch ~seq =
  Array.init batch (fun _ -> Array.init seq (fun _ -> Prng.int prng ~bound:vocab))

let loss_and_grads m ~tokens ~targets =
  let cache = Model.forward m ~tokens in
  let loss, d_logits = Model.cross_entropy ~logits:cache.Model.logits ~targets in
  (loss, Model.backward m cache ~d_logits)

let step m ~tokens ~targets ~lr =
  let loss, grads = loss_and_grads m ~tokens ~targets in
  Model.sgd_step m grads ~lr;
  loss

(* --- crash-safe step checkpoints ------------------------------------ *)

let checkpoint_magic = "SUBSTATION-TRAIN-CKPT/1"

(* Everything one step boundary needs to resume bitwise: completed-step
   count, the losses so far, the PRNG counter (so the next batch draw is
   the one the uninterrupted run would have made), and plain-data copies
   of every parameter and Adam moment buffer. *)
type checkpoint_payload = {
  cp_step : int;
  cp_losses : float array;
  cp_prng : int64;
  cp_model : Model.snapshot;
  cp_adam : Model.adam_snapshot option;
}

(* Binds a checkpoint to the exact run shape: a file written by a
   different model geometry, optimizer, step count, or learning rate is
   rejected at load rather than silently resumed into the wrong run. *)
let fingerprint (m : Model.t) ~optimizer ~steps ~lr =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( m.Model.hp,
            m.Model.vocab,
            m.Model.n_layers,
            (match optimizer with Sgd -> "sgd" | Adam -> "adam"),
            steps,
            lr )
          []))

let train ?(optimizer = Sgd) ?checkpoint ?interrupt_after (m : Model.t) ~steps
    ~lr prng =
  let hp = m.Model.hp in
  let adam = lazy (Model.adam_init m) in
  let losses = Array.make steps 0.0 in
  let fp = lazy (fingerprint m ~optimizer ~steps ~lr) in
  let start =
    match checkpoint with
    | Some path when Sys.file_exists path ->
        let (cp : checkpoint_payload) =
          Substation.Checkpointing.load ~run:"training run" ~path
            ~magic:checkpoint_magic ~fingerprint:(Lazy.force fp)
            ~what:"Training.train" ()
        in
        Model.restore m cp.cp_model;
        (match cp.cp_adam with
        | Some a -> Model.adam_restore (Lazy.force adam) a
        | None -> ());
        Prng.set_state prng cp.cp_prng;
        Array.blit cp.cp_losses 0 losses 0 cp.cp_step;
        cp.cp_step
    | _ -> 0
  in
  let save completed =
    match checkpoint with
    | None -> ()
    | Some path ->
        let payload =
          {
            cp_step = completed;
            cp_losses = Array.sub losses 0 completed;
            cp_prng = Prng.state prng;
            cp_model = Model.snapshot m;
            cp_adam =
              (match optimizer with
              | Adam -> Some (Model.adam_snapshot (Lazy.force adam))
              | Sgd -> None);
          }
        in
        Substation.Checkpointing.save ~path ~magic:checkpoint_magic
          ~fingerprint:(Lazy.force fp) payload
  in
  (* Warm the compiled-plan cache: every step's layer forwards are then
     pure cache hits (zero pass re-runs). *)
  Model.precompile m ~batch:hp.Hparams.batch ~seq:hp.Hparams.seq;
  let done_this_run = ref 0 in
  for s = start to steps - 1 do
    let tokens =
      random_batch prng ~vocab:m.Model.vocab ~batch:hp.Hparams.batch
        ~seq:hp.Hparams.seq
    in
    losses.(s) <-
      (match optimizer with
      | Sgd -> step m ~tokens ~targets:tokens ~lr
      | Adam ->
          let loss, grads = loss_and_grads m ~tokens ~targets:tokens in
          Model.adam_step m (Lazy.force adam) grads ~lr;
          loss);
    save (s + 1);
    incr done_this_run;
    match interrupt_after with
    | Some n when !done_this_run >= n && s + 1 < steps ->
        (* Mirrors [Perfdb.Interrupted]: the simulated crash fires only
           after the step's checkpoint hit disk, so a resumed run replays
           from exactly here. *)
        raise (Interrupted (Option.value checkpoint ~default:""))
    | _ -> ()
  done;
  (match checkpoint with
  | Some path when Sys.file_exists path -> (
      try Sys.remove path with Sys_error _ -> ())
  | _ -> ());
  {
    losses;
    initial_loss = losses.(0);
    final_loss = losses.(steps - 1);
  }

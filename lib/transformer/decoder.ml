let program ?variant hp =
  Encoder.program_with ?variant ~activation:`Gelu ~causal:true hp

let run hp ~x ~d_y ~params =
  Ops.Program.run (program hp) (("x", x) :: ("d_y", d_y) :: params)

let kernel_names = Encoder.kernel_names

(* --- incremental decode step (serving path) -------------------------- *)

(* One KV-cached decode step through the whole block: cached attention,
   residual, layernorm, GELU feed-forward, residual, layernorm — the same
   value helpers the op program's run closures call, in the same order, so
   the incremental path reproduces the oracle's per-column values bitwise.
   Inference only: requires dropout_p = 0 (at which the program's dropout
   ops are bitwise identities). *)
let cached_step (hp : Hparams.t) ~params ~caches x =
  if hp.dropout_p <> 0.0 then
    invalid_arg "Decoder.cached_step: requires dropout_p = 0 (inference)";
  let p n =
    match List.assoc_opt n params with
    | Some t -> t
    | None -> invalid_arg ("Decoder.cached_step: missing parameter " ^ n)
  in
  let attn_b, knew, vnew = Mha.attend hp ~params ~caches x in
  let res1 = Dense.add attn_b x in
  let ln1_out =
    Ops.Normalization.layernorm_value res1 ~gamma:(p "ln1_g") ~beta:(p "ln1_b")
      ~axis:"i" ~eps:hp.eps
  in
  let ff1 = Einsum.eval "ui,ibj->ubj" [ p "w1"; ln1_out ] in
  let ff1b = Dense.add_bcast ff1 (p "b1") in
  let act = Dense.map Ops.Elementwise.gelu_value ff1b in
  let ff2 = Einsum.eval "iu,ubj->ibj" [ p "w2"; act ] in
  let ff2b = Dense.add_bcast ff2 (p "b2") in
  let res2 = Dense.add ff2b ln1_out in
  let y =
    Ops.Normalization.layernorm_value res2 ~gamma:(p "ln2_g") ~beta:(p "ln2_b")
      ~axis:"i" ~eps:hp.eps
  in
  (y, knew, vnew)

(** GPT-style decoder block (paper §VIII: "Additional transformer networks,
    such as Megatron-LM and GPT-3, only differ by dimensions and minor
    aspects in the encoder and decoder blocks ... the recipe remains
    unchanged").

    The block is the encoder layer with causally-masked self-attention and
    a GELU feed-forward activation; everything else — containers, backward
    structure, fusion opportunities — is shared, which is exactly the
    paper's point. *)

val program : ?variant:Encoder.qkv_variant -> Hparams.t -> Ops.Program.t

val run :
  Hparams.t -> x:Dense.t -> d_y:Dense.t -> params:(string * Dense.t) list
  -> Ops.Op.env

(** Kernel-name table for the decoder's fused groups (BGD replaces BRD). *)
val kernel_names : (string list * string) list

(** [cached_step hp ~params ~caches x] is one KV-cached incremental decode
    step through the block for a ragged batch (see {!Mha.attend}): returns
    [(y, new K column, new V column)]. Requires [dropout_p = 0]; bitwise
    equal per column to running {!program} over the full prefix. *)
val cached_step :
  Hparams.t -> params:(string * Dense.t) list -> caches:Mha.cache array
  -> Dense.t -> Dense.t * Dense.t * Dense.t

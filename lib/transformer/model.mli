(** A small but complete BERT-style model: token embedding, a stack of
    encoder layers, and a (weight-tied) output projection to the
    vocabulary. This is the substrate of the end-to-end training example —
    the paper's optimized layers "can be extended to support a full
    training pipeline by stacking" (§VI-C). *)

type t = {
  hp : Hparams.t;
  vocab : int;
  n_layers : int;
  embedding : Dense.t;  (** [v; i] — also the tied output head *)
  layer_params : (string * Dense.t) list array;
}

val create : ?n_layers:int -> ?vocab:int -> Hparams.t -> t

type cache = {
  tokens : int array array;  (** [batch][seq] *)
  x0 : Dense.t;  (** embedded input [i, b, j] *)
  layer_envs : Ops.Op.env array;  (** forward environment of each layer *)
  y : Dense.t;  (** final hidden states *)
  logits : Dense.t;  (** [v, b, j] *)
}

(** [forward m ~tokens] embeds, runs every layer forward, and projects. *)
val forward : t -> tokens:int array array -> cache

type grads = {
  d_embedding : Dense.t;
  d_layers : (string * Dense.t) list array;
}

(** [backward m cache ~d_logits] backpropagates through the head and every
    layer, returning parameter gradients and the input-embedding gradient
    (already scattered into [d_embedding]). *)
val backward : t -> cache -> d_logits:Dense.t -> grads

(** [cross_entropy ~logits ~targets] is the mean token-level cross-entropy
    and its gradient with respect to the logits. *)
val cross_entropy :
  logits:Dense.t -> targets:int array array -> float * Dense.t

(** [sgd_step m grads ~lr] updates all parameters in place. *)
val sgd_step : t -> grads -> lr:float -> unit

(** Adam optimizer state (first/second moment per parameter). *)
type adam_state

val adam_init : t -> adam_state

(** [adam_step m state grads ~lr] performs one bias-corrected Adam update
    in place (defaults: beta1 0.9, beta2 0.999, eps 1e-8 — the BERT
    pretraining settings). *)
val adam_step :
  ?beta1:float -> ?beta2:float -> ?eps:float -> t -> adam_state -> grads
  -> lr:float -> unit

(** {1 Snapshot / restore}

    Plain-data, marshalable copies of every parameter (and Adam moment)
    buffer, used by the training loop's crash-safe step checkpoints.
    Restoring blits into the live tensors in place, so aliases — the
    weight-tied output head reads [embedding] itself — stay intact, and a
    restored model is bitwise identical to the one snapshotted. *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Raises [Invalid_argument] when the snapshot's buffer sizes or layer
    structure do not match the model. *)

type adam_snapshot

val adam_snapshot : adam_state -> adam_snapshot
val adam_restore : adam_state -> adam_snapshot -> unit

(** [parameter_count m] counts learnable scalars. *)
val parameter_count : t -> int

(** {1 Inference: KV-cached incremental decoding}

    A [session] holds one sequence's per-layer K/V caches. [decode_batch]
    advances a ragged batch of sessions one token each; per-layer cache
    appends are committed only after the whole stack succeeds, so an
    aborted step (crash, deadline) leaves sessions untouched. Decoding
    requires [dropout_p = 0] and is bitwise equal, per column, to
    [forward_with ~causal:true ~activation:`Gelu] over the full prefix. *)

(** [precompile ?causal ?activation m ~batch ~seq] warms the compiled-plan
    cache for a layer geometry before the hot loop starts; {!forward_with}
    then re-runs zero passes. Redundant but harmless when omitted — the
    first forward compiles and caches the same plan. *)
val precompile :
  ?causal:bool -> ?activation:[ `Gelu | `Relu ] -> t
  -> batch:int -> seq:int -> unit

(** [forward_with ?causal ?activation m ~tokens] generalizes {!forward}:
    batch/seq follow the token array and the layer program can be the
    causal (decoder) block. [forward] is [forward_with] at the defaults.
    The layer forward is a {!Compile.Compiled} plan under the passthrough
    regime (the backward reads the retained intermediates), compiled once
    per geometry through the plan cache and executed per layer. *)
val forward_with :
  ?causal:bool -> ?activation:[ `Gelu | `Relu ] -> t
  -> tokens:int array array -> cache

type session

val new_session : t -> session

(** Tokens decoded into the session so far. *)
val session_len : session -> int

(** Floats resident in the session's K/V cache buffers. *)
val session_floats : session -> int

(** [decode_batch m sessions ~tokens] feeds [tokens.(b)] to
    [sessions.(b)]; returns logits, dims [(v, b, j=1)]. *)
val decode_batch : t -> session array -> tokens:int array -> Dense.t

(** [logits_column logits ~b] is slot [b]'s vocabulary column at the last
    position. *)
val logits_column : Dense.t -> b:int -> float array

(** [decode_oracle m ~prompt] recomputes the whole causal prefix and
    returns the final position's vocabulary column — the oracle the cached
    path must match bitwise. *)
val decode_oracle : t -> prompt:int array -> float array

(** Greedy next-token choice; ties break to the lowest index. *)
val argmax : float array -> int

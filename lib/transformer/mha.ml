let param_names = [ "wq"; "wk"; "wv"; "bq"; "bk"; "bv"; "wo"; "bo" ]

let forward_names =
  [
    "qkv"; "qkv_qk"; "qkv_q"; "qkv_k"; "qkv_v"; "bias_q"; "bias_k"; "bias_v";
    "qkt"; "softmax"; "attn_dropout"; "gamma"; "out"; "output_bias";
  ]

let backward_names =
  [
    "output_bias_dw"; "out_dx"; "out_dw"; "gamma_dx1"; "gamma_dx2";
    "attn_dropout_dx"; "softmax_dx"; "qkt_dx1"; "qkt_dx2"; "bias_q_dw";
    "bias_k_dw"; "bias_v_dw"; "qkv_dx"; "qkv_dx_qk"; "qkv_dx_q"; "qkv_dx_k";
    "qkv_dx_v"; "qkv_dx_acc"; "qkv_dx_acc1"; "qkv_dx_acc2"; "qkv_dw";
    "qkv_dw_qk"; "qkv_dw_q"; "qkv_dw_k"; "qkv_dw_v";
  ]

let keep names (op : Ops.Op.t) = List.mem op.name names

let forward_program ?variant hp =
  Ops.Program.make ~containers:(Encoder.containers hp)
    (List.filter (keep forward_names) (Encoder.forward_ops ?variant hp))

let program ?variant hp =
  let fwd = List.filter (keep forward_names) (Encoder.forward_ops ?variant hp) in
  let bwd =
    List.filter (keep backward_names) (Encoder.backward_ops ?variant hp)
  in
  (* In the standalone block the cotangent arrives directly as d_attn_b. *)
  Ops.Program.make ~containers:(Encoder.containers hp) (fwd @ bwd)

let run hp ~x ~d_out ~params =
  let p = program hp in
  Ops.Program.run p (("x", x) :: ("d_attn_b", d_out) :: params)

let kernel_names =
  List.filter
    (fun (members, _) ->
      List.for_all (fun m -> List.mem m (forward_names @ backward_names)) members)
    Encoder.kernel_names

(* --- KV cache: incremental decoding (serving path) ------------------- *)

(* Per-session, per-layer store of the biased K/V projections of every
   token decoded so far. Step t recomputes only the new token's
   projections — O(L) bytes moved per token instead of the O(L^2) a full
   recompute re-streams (the serving-side face of the paper's
   data-movement argument). Rows are (p*heads + h); columns are token
   positions, capacity-doubling and zero-padded so freshly exposed tail
   columns are exact 0.0 contributions. *)
type cache = {
  ph : int;  (* proj *)
  hh : int;  (* heads *)
  mutable cap : int;
  mutable len : int;
  mutable ck : float array;  (* (ph*hh) rows x cap columns, row-major *)
  mutable cv : float array;
}

let cache_create (hp : Hparams.t) =
  let ph = hp.proj and hh = hp.heads in
  let cap = 16 in
  {
    ph;
    hh;
    cap;
    len = 0;
    ck = Array.make (ph * hh * cap) 0.0;
    cv = Array.make (ph * hh * cap) 0.0;
  }

let cache_len c = c.len

(* Floats resident in this cache's buffers (metrics / memory accounting). *)
let cache_floats c = 2 * c.ph * c.hh * c.cap

let grow c =
  let cap' = 2 * c.cap in
  let regrow old =
    let nu = Array.make (c.ph * c.hh * cap') 0.0 in
    for r = 0 to (c.ph * c.hh) - 1 do
      Array.blit old (r * c.cap) nu (r * cap') c.len
    done;
    nu
  in
  c.ck <- regrow c.ck;
  c.cv <- regrow c.cv;
  c.cap <- cap'

(* [cache_append c ~k ~v ~b] pushes slot b's column of a step's biased K/V
   projections (dims (p,h,b,k=1) / (w,h,b,k=1)) onto the cache. *)
let cache_append c ~k ~v ~b =
  if c.len = c.cap then grow c;
  for pi = 0 to c.ph - 1 do
    for hi = 0 to c.hh - 1 do
      let r = (pi * c.hh) + hi in
      c.ck.((r * c.cap) + c.len) <-
        Dense.get k [ ("p", pi); ("h", hi); ("b", b); ("k", 0) ];
      c.cv.((r * c.cap) + c.len) <-
        Dense.get v [ ("w", pi); ("h", hi); ("b", b); ("k", 0) ]
    done
  done;
  c.len <- c.len + 1

(* One incremental attention step for a ragged batch of sessions. [x] is
   the new-token hidden column, dims (i, b, j=1), slot b paired with
   caches.(b). Computes only the new token's Q/K/V projections, attends
   against cached keys/values padded to the longest session, and returns
   (attn_b, new K column, new V column). The caller commits the K/V
   columns with [cache_append] once the whole layer stack has succeeded,
   so an aborted step leaves every session untouched.

   Bitwise parity with the oracle rests on: padded tail columns being
   exact zeros (their products contribute +0.0 at the tail of the
   ascending-k reduction), and the -inf pad mask entering the softmax at
   the same point as the oracle's additive causal mask. *)
let attend (hp : Hparams.t) ~params ~caches x =
  let p n =
    match List.assoc_opt n params with
    | Some t -> t
    | None -> invalid_arg ("Mha.attend: missing parameter " ^ n)
  in
  let nb = Array.length caches in
  if nb = 0 then invalid_arg "Mha.attend: empty batch";
  let qq = Einsum.eval "phi,ibj->phbj" [ p "wq"; x ] in
  let xk = Dense.rename_axes x [ ("j", "k") ] in
  let kk = Einsum.eval "phi,ibk->phbk" [ p "wk"; xk ] in
  let vv = Einsum.eval "whi,ibk->whbk" [ p "wv"; xk ] in
  let qqb = Dense.add_bcast qq (p "bq") in
  let kkb = Dense.add_bcast kk (p "bk") in
  let vvb = Dense.add_bcast vv (p "bv") in
  let lmax = 1 + Array.fold_left (fun acc c -> max acc c.len) 0 caches in
  let ph = hp.proj and hh = hp.heads in
  let assemble axis0 cache_of newcol =
    let t = Dense.zeros [ (axis0, ph); ("h", hh); ("b", nb); ("k", lmax) ] in
    let data = Dense.unsafe_data t in
    for pi = 0 to ph - 1 do
      for hi = 0 to hh - 1 do
        let r = (pi * hh) + hi in
        for b = 0 to nb - 1 do
          let c = caches.(b) in
          let base = ((r * nb) + b) * lmax in
          Array.blit (cache_of c) (r * c.cap) data base c.len;
          data.(base + c.len) <-
            Dense.get newcol [ (axis0, pi); ("h", hi); ("b", b); ("k", 0) ]
        done
      done
    done;
    t
  in
  let kkb_pad = assemble "p" (fun c -> c.ck) kkb in
  let vvb_pad = assemble "w" (fun c -> c.cv) vvb in
  (* The naive interior stays in-tree as the oracle: QK^T over the padded
     keys, a 0/-inf pad mask (column k of slot b is valid when k <= len_b:
     cached prefix plus the new token), masked softmax, V contraction. *)
  let naive_gam () =
    let beta = Einsum.eval "phbk,phbj->hbjk" [ kkb_pad; qqb ] in
    let mask =
      Dense.init [ ("b", nb); ("k", lmax) ] (fun idx ->
          if List.assoc "k" idx <= caches.(List.assoc "b" idx).len then 0.0
          else neg_infinity)
    in
    let alpha =
      Ops.Normalization.softmax_masked ~mask beta ~axis:"k"
        ~prescale:(Hparams.scaler hp)
    in
    Einsum.eval "whbk,hbjk->whbj" [ vvb_pad; alpha ]
  in
  (* Streaming kernel, single KV tile spanning the padded length: exact
     mode, so the ragged [valid] limits reproduce the pad mask bitwise and
     the decode step stays bitwise equal to the recompute oracle. *)
  let gam =
    if Fastmode.enabled () then
      Guard.protected ~kernel:"flashattn.attend"
        ~outputs:(fun g -> [ Dense.unsafe_data g ])
        ~fallback:naive_gam
        (fun () ->
          let valid = Array.map (fun c -> c.len + 1) caches in
          fst
            (Flashattn.forward ~kv_tile:lmax ~valid ~stats:false
               ~prescale:(Hparams.scaler hp) ~q:qqb ~k:kkb_pad ~v:vvb_pad ()))
    else naive_gam ()
  in
  (* The out-projection reads [wo] through a non-direct row view ([i;w;h]
     over (w,h,i) storage), which the GEMM would otherwise re-pack into
     arena scratch on every decoded token — the dominant per-token cost of
     a decode GEMV. [wo] is registered prepacked at {!Params.init}, so
     einsum reuses the one packed image until the optimizer updates it. *)
  let attn = Einsum.eval "whi,whbj->ibj" [ p "wo"; gam ] in
  (Dense.add_bcast attn (p "bo"), kkb, vvb)

(* Full-sequence attention context through the streaming kernel: the
   prefill counterpart of [attend]. The guard falls back to the naive
   einsum + softmax + einsum chain; with the default tiles the kernel
   streams KV tiles (online softmax), so results are within ulps of the
   oracle rather than bitwise — callers needing bitwise parity (tests)
   run under [Fastmode.with_naive]. *)
let context (hp : Hparams.t) ?(causal = false) ~q ~k ~v () =
  let prescale = Hparams.scaler hp in
  let naive () =
    let beta = Einsum.eval "phbk,phbj->hbjk" [ k; q ] in
    let mask =
      if causal then
        let dims = Shape.to_list (Dense.shape beta) in
        Some
          (Ops.Normalization.causal_mask ~q:"j" ~k:"k"
             (List.filter (fun (a, _) -> a = "j" || a = "k") dims))
      else None
    in
    let alpha = Ops.Normalization.softmax_masked ?mask beta ~axis:"k" ~prescale in
    Einsum.eval "whbk,hbjk->whbj" [ v; alpha ]
  in
  if Fastmode.enabled () then
    Guard.protected ~kernel:"flashattn.context"
      ~outputs:(fun g -> [ Dense.unsafe_data g ])
      ~fallback:naive
      (fun () ->
        fst (Flashattn.forward ~causal ~stats:false ~prescale ~q ~k ~v ()))
  else naive ()

type qkv_variant = Qkv_separate | Qk_fused | Qkv_fused

let variant_to_string = function
  | Qkv_separate -> "unfused"
  | Qk_fused -> "QK fused"
  | Qkv_fused -> "QKV fused"

let param_names =
  [
    "wq"; "wk"; "wv"; "bq"; "bk"; "bv"; "wo"; "bo"; "ln1_g"; "ln1_b"; "w1";
    "b1"; "w2"; "b2"; "ln2_g"; "ln2_b";
  ]

let grad name = "d_" ^ name

let containers (hp : Hparams.t) =
  let d axes = Hparams.pick_dims hp axes in
  let x = d [ "i"; "b"; "j" ] in
  let qq = d [ "p"; "h"; "b"; "j" ] in
  let kk = d [ "p"; "h"; "b"; "k" ] in
  let vv = d [ "w"; "h"; "b"; "k" ] in
  let beta = d [ "h"; "b"; "j"; "k" ] in
  let gam = d [ "w"; "h"; "b"; "j" ] in
  let ff = d [ "u"; "b"; "j" ] in
  let stats = d [ "b"; "j" ] in
  let forward =
    [
      ("x", x);
      ("wq", d [ "p"; "h"; "i" ]);
      ("wk", d [ "p"; "h"; "i" ]);
      ("wv", d [ "w"; "h"; "i" ]);
      ("bq", d [ "p"; "h" ]);
      ("bk", d [ "p"; "h" ]);
      ("bv", d [ "w"; "h" ]);
      ("wo", d [ "w"; "h"; "i" ]);
      ("bo", d [ "i" ]);
      ("ln1_g", d [ "i" ]);
      ("ln1_b", d [ "i" ]);
      ("w1", d [ "u"; "i" ]);
      ("b1", d [ "u" ]);
      ("w2", d [ "i"; "u" ]);
      ("b2", d [ "i" ]);
      ("ln2_g", d [ "i" ]);
      ("ln2_b", d [ "i" ]);
      ("qq", qq);
      ("kk", kk);
      ("vv", vv);
      ("qqb", qq);
      ("kkb", kk);
      ("vvb", vv);
      ("beta", beta);
      ("alpha_sm", beta);
      ("alpha", beta);
      ("attn_mask", beta);
      ("gam", gam);
      ("attn_out", x);
      ("attn_b", x);
      ("drop1", x);
      ("mask1", x);
      ("res1", x);
      ("ln1_out", x);
      ("ln1_mean", stats);
      ("ln1_istd", stats);
      ("ff1", ff);
      ("ff1b", ff);
      ("act", ff);
      ("drop2", ff);
      ("mask2", ff);
      ("ff2", x);
      ("ff2b", x);
      ("drop3", x);
      ("mask3", x);
      ("res2", x);
      ("y", x);
      ("ln2_mean", stats);
      ("ln2_istd", stats);
    ]
  in
  let backward =
    [
      ("d_y", x);
      ("d_res2", x);
      ("d_ff2b", x);
      ("d_drop2", ff);
      ("d_act", ff);
      ("d_ff1b", ff);
      ("d_ln1_lin", x);
      ("d_ln1", x);
      ("d_res1", x);
      ("d_attn_b", x);
      ("d_gam", gam);
      ("d_alpha", beta);
      ("d_alpha_sm", beta);
      ("d_beta", beta);
      ("d_qqb", qq);
      ("d_kkb", kk);
      ("d_vvb", vv);
      ("d_x_attn", x);
      ("d_x_q", x);
      ("d_x_k", x);
      ("d_x_v", x);
      ("d_x_qk", x);
      ("d_x", x);
      ("d_wq", d [ "p"; "h"; "i" ]);
      ("d_wk", d [ "p"; "h"; "i" ]);
      ("d_wv", d [ "w"; "h"; "i" ]);
      ("d_bq", d [ "p"; "h" ]);
      ("d_bk", d [ "p"; "h" ]);
      ("d_bv", d [ "w"; "h" ]);
      ("d_wo", d [ "w"; "h"; "i" ]);
      ("d_bo", d [ "i" ]);
      ("d_ln1_g", d [ "i" ]);
      ("d_ln1_b", d [ "i" ]);
      ("d_w1", d [ "u"; "i" ]);
      ("d_b1", d [ "u" ]);
      ("d_w2", d [ "i"; "u" ]);
      ("d_b2", d [ "i" ]);
      ("d_ln2_g", d [ "i" ]);
      ("d_ln2_b", d [ "i" ]);
    ]
  in
  forward @ backward

(* Forward Q/K/V input projections under the three algebraic-fusion
   strategies of §IV-D. *)
let qkv_forward (hp : Hparams.t) variant =
  let dims = Hparams.dims hp in
  let part = Ops.Contraction.part in
  let x_as_k = [ ("x", [ ("j", "k") ]) ] in
  let q = part ~spec:"phi,ibj->phbj" ~inputs:[ "wq"; "x" ] ~output:"qq" () in
  let k =
    part ~renames:x_as_k ~spec:"phi,ibk->phbk" ~inputs:[ "wk"; "x" ]
      ~output:"kk" ()
  in
  let v =
    part ~renames:x_as_k ~spec:"whi,ibk->whbk" ~inputs:[ "wv"; "x" ]
      ~output:"vv" ()
  in
  match variant with
  | Qkv_fused ->
      [
        Ops.Contraction.grouped ~name:"qkv" ~dims
          ~group_role:Ops.Contraction.Group_m [ q; k; v ] ();
      ]
  | Qk_fused ->
      [
        Ops.Contraction.grouped ~name:"qkv_qk" ~dims
          ~group_role:Ops.Contraction.Group_m [ q; k ] ();
        Ops.Contraction.einsum ~name:"qkv_v" ~dims v ();
      ]
  | Qkv_separate ->
      [
        Ops.Contraction.einsum ~name:"qkv_q" ~dims q ();
        Ops.Contraction.einsum ~name:"qkv_k" ~dims k ();
        Ops.Contraction.einsum ~name:"qkv_v" ~dims v ();
      ]

(* Backward dX and dW of the projections under the same strategies. *)
let qkv_backward (hp : Hparams.t) variant =
  let dims = Hparams.dims hp in
  let part = Ops.Contraction.part in
  let dx_q = part ~spec:"phi,phbj->ibj" ~inputs:[ "wq"; "d_qqb" ] in
  let dx_k =
    part
      ~renames:[ ("d_kkb", [ ("k", "j") ]) ]
      ~spec:"phi,phbj->ibj" ~inputs:[ "wk"; "d_kkb" ]
  in
  let dx_v =
    part
      ~renames:[ ("d_vvb", [ ("k", "j") ]) ]
      ~spec:"whi,whbj->ibj" ~inputs:[ "wv"; "d_vvb" ]
  in
  let dw_q = part ~spec:"ibj,phbj->phi" ~inputs:[ "x"; "d_qqb" ] ~output:"d_wq" () in
  let dw_k =
    part
      ~renames:[ ("x", [ ("j", "k") ]) ]
      ~spec:"ibk,phbk->phi" ~inputs:[ "x"; "d_kkb" ] ~output:"d_wk" ()
  in
  let dw_v =
    part
      ~renames:[ ("x", [ ("j", "k") ]) ]
      ~spec:"ibk,whbk->whi" ~inputs:[ "x"; "d_vvb" ] ~output:"d_wv" ()
  in
  match variant with
  | Qkv_fused ->
      [
        Ops.Contraction.grouped ~name:"qkv_dx" ~dims ~backward:true
          ~group_role:Ops.Contraction.Group_k ~accumulate:true
          [
            dx_q ~output:"d_x_attn" ();
            dx_k ~output:"d_x_attn" ();
            dx_v ~output:"d_x_attn" ();
          ]
          ();
        Ops.Contraction.grouped ~name:"qkv_dw" ~dims ~backward:true
          ~group_role:Ops.Contraction.Group_n [ dw_q; dw_k; dw_v ] ();
      ]
  | Qk_fused ->
      [
        Ops.Contraction.grouped ~name:"qkv_dx_qk" ~dims ~backward:true
          ~group_role:Ops.Contraction.Group_k ~accumulate:true
          [ dx_q ~output:"d_x_qk" (); dx_k ~output:"d_x_qk" () ]
          ();
        Ops.Contraction.einsum ~name:"qkv_dx_v" ~dims ~backward:true
          (dx_v ~output:"d_x_v" ())
          ();
        Ops.Elementwise.add ~name:"qkv_dx_acc" ~x:"d_x_qk" ~y:"d_x_v"
          ~out:"d_x_attn" (Hparams.dims_x hp) ~backward:true ();
        Ops.Contraction.grouped ~name:"qkv_dw_qk" ~dims ~backward:true
          ~group_role:Ops.Contraction.Group_n [ dw_q; dw_k ] ();
        Ops.Contraction.einsum ~name:"qkv_dw_v" ~dims ~backward:true dw_v ();
      ]
  | Qkv_separate ->
      [
        Ops.Contraction.einsum ~name:"qkv_dx_q" ~dims ~backward:true
          (dx_q ~output:"d_x_q" ())
          ();
        Ops.Contraction.einsum ~name:"qkv_dx_k" ~dims ~backward:true
          (dx_k ~output:"d_x_k" ())
          ();
        Ops.Contraction.einsum ~name:"qkv_dx_v" ~dims ~backward:true
          (dx_v ~output:"d_x_v" ())
          ();
        Ops.Elementwise.add ~name:"qkv_dx_acc1" ~x:"d_x_q" ~y:"d_x_k"
          ~out:"d_x_qk" (Hparams.dims_x hp) ~backward:true ();
        Ops.Elementwise.add ~name:"qkv_dx_acc2" ~x:"d_x_qk" ~y:"d_x_v"
          ~out:"d_x_attn" (Hparams.dims_x hp) ~backward:true ();
        Ops.Contraction.einsum ~name:"qkv_dw_q" ~dims ~backward:true dw_q ();
        Ops.Contraction.einsum ~name:"qkv_dw_k" ~dims ~backward:true dw_k ();
        Ops.Contraction.einsum ~name:"qkv_dw_v" ~dims ~backward:true dw_v ();
      ]

let forward_ops ?(variant = Qkv_fused) ?(activation = `Relu) ?(causal = false)
    (hp : Hparams.t) =
  let dims = Hparams.dims hp in
  let seed = hp.seed in
  let p_drop = hp.dropout_p in
  let prescale = Hparams.scaler hp in
  let part = Ops.Contraction.part in
  let act_op =
    match activation with
    | `Relu -> Ops.Elementwise.relu ~name:"relu" ~x:"ff1b" ~out:"act" (Hparams.dims_ff hp) ()
    | `Gelu -> Ops.Elementwise.gelu ~name:"gelu" ~x:"ff1b" ~out:"act" (Hparams.dims_ff hp) ()
  in
  let causal_opt = if causal then Some ("j", "k") else None in
  qkv_forward hp variant
  @ [
    Ops.Elementwise.bias ~name:"bias_q" ~x:"qq" ~bias:"bq" ~out:"qqb"
      (Hparams.dims_qq hp) ~bias_axes:[ "p"; "h" ] ();
    Ops.Elementwise.bias ~name:"bias_k" ~x:"kk" ~bias:"bk" ~out:"kkb"
      (Hparams.dims_kk hp) ~bias_axes:[ "p"; "h" ] ();
    Ops.Elementwise.bias ~name:"bias_v" ~x:"vv" ~bias:"bv" ~out:"vvb"
      (Hparams.dims_vv hp) ~bias_axes:[ "w"; "h" ] ();
    Ops.Contraction.einsum ~name:"qkt" ~dims
      (part ~spec:"phbk,phbj->hbjk" ~inputs:[ "kkb"; "qqb" ] ~output:"beta" ())
      ();
    Ops.Normalization.softmax ~name:"softmax" ~x:"beta" ~out:"alpha_sm"
      (Hparams.dims_beta hp) ~axis:"k" ~prescale ?causal:causal_opt ();
    Ops.Elementwise.dropout ~name:"attn_dropout" ~x:"alpha_sm" ~out:"alpha"
      ~mask:"attn_mask" (Hparams.dims_beta hp) ~p:p_drop ~seed ();
    Ops.Contraction.einsum ~name:"gamma" ~dims
      (part ~spec:"whbk,hbjk->whbj" ~inputs:[ "vvb"; "alpha" ] ~output:"gam" ())
      ();
    Ops.Contraction.einsum ~name:"out" ~dims
      (part ~spec:"whi,whbj->ibj" ~inputs:[ "wo"; "gam" ] ~output:"attn_out" ())
      ();
    Ops.Elementwise.bias ~name:"output_bias" ~x:"attn_out" ~bias:"bo"
      ~out:"attn_b" (Hparams.dims_x hp) ~bias_axes:[ "i" ] ();
    Ops.Elementwise.dropout ~name:"attn_out_dropout" ~x:"attn_b" ~out:"drop1"
      ~mask:"mask1" (Hparams.dims_x hp) ~p:p_drop ~seed ();
    Ops.Elementwise.add ~name:"residual1" ~x:"drop1" ~y:"x" ~out:"res1"
      (Hparams.dims_x hp) ();
    Ops.Normalization.layernorm ~name:"ln1" ~x:"res1" ~gamma:"ln1_g"
      ~beta:"ln1_b" ~out:"ln1_out" ~mean:"ln1_mean" ~istd:"ln1_istd"
      (Hparams.dims_x hp) ~axis:"i" ~eps:hp.eps ();
    Ops.Contraction.einsum ~name:"lin1" ~dims
      (part ~spec:"ui,ibj->ubj" ~inputs:[ "w1"; "ln1_out" ] ~output:"ff1" ())
      ();
    Ops.Elementwise.bias ~name:"bias1" ~x:"ff1" ~bias:"b1" ~out:"ff1b"
      (Hparams.dims_ff hp) ~bias_axes:[ "u" ] ();
    act_op;
    Ops.Elementwise.dropout ~name:"ff_dropout" ~x:"act" ~out:"drop2"
      ~mask:"mask2" (Hparams.dims_ff hp) ~p:p_drop ~seed ();
    Ops.Contraction.einsum ~name:"lin2" ~dims
      (part ~spec:"iu,ubj->ibj" ~inputs:[ "w2"; "drop2" ] ~output:"ff2" ())
      ();
    Ops.Elementwise.bias ~name:"bias2" ~x:"ff2" ~bias:"b2" ~out:"ff2b"
      (Hparams.dims_x hp) ~bias_axes:[ "i" ] ();
    Ops.Elementwise.dropout ~name:"out_dropout" ~x:"ff2b" ~out:"drop3"
      ~mask:"mask3" (Hparams.dims_x hp) ~p:p_drop ~seed ();
    Ops.Elementwise.add ~name:"residual2" ~x:"drop3" ~y:"ln1_out" ~out:"res2"
      (Hparams.dims_x hp) ();
    Ops.Normalization.layernorm ~name:"ln2" ~x:"res2" ~gamma:"ln2_g"
      ~beta:"ln2_b" ~out:"y" ~mean:"ln2_mean" ~istd:"ln2_istd"
      (Hparams.dims_x hp) ~axis:"i" ~eps:hp.eps ();
  ]

let backward_ops ?(variant = Qkv_fused) ?(activation = `Relu) (hp : Hparams.t)
    =
  let dims = Hparams.dims hp in
  let p_drop = hp.dropout_p in
  let prescale = Hparams.scaler hp in
  let part = Ops.Contraction.part in
  let bwd op = { op with Ops.Op.backward = true } in
  let act_dx_op =
    match activation with
    | `Relu ->
        Ops.Elementwise.relu_dx ~name:"relu_dx" ~dy:"d_act" ~x:"ff1b"
          ~out:"d_ff1b" (Hparams.dims_ff hp)
    | `Gelu ->
        Ops.Elementwise.gelu_dx ~name:"gelu_dx" ~dy:"d_act" ~x:"ff1b"
          ~out:"d_ff1b" (Hparams.dims_ff hp)
  in
  List.map bwd
    ([
      Ops.Normalization.layernorm_dw ~name:"ln2_dw" ~dy:"d_y" ~x:"res2"
        ~mean:"ln2_mean" ~istd:"ln2_istd" ~dgamma:"d_ln2_g" ~dbeta:"d_ln2_b"
        (Hparams.dims_x hp) ~axis:"i";
      Ops.Normalization.layernorm_dx ~name:"ln2_dx" ~dy:"d_y" ~x:"res2"
        ~gamma:"ln2_g" ~mean:"ln2_mean" ~istd:"ln2_istd" ~out:"d_res2"
        (Hparams.dims_x hp) ~axis:"i";
      Ops.Elementwise.dropout_dx ~name:"out_dropout_dx" ~dy:"d_res2"
        ~mask:"mask3" ~out:"d_ff2b" (Hparams.dims_x hp) ~p:p_drop;
      Ops.Elementwise.bias_dw ~name:"bias2_dw" ~dy:"d_ff2b" ~out:"d_b2"
        (Hparams.dims_x hp) ~bias_axes:[ "i" ];
      Ops.Contraction.einsum ~name:"lin2_dx" ~dims ~backward:true
        (part ~spec:"iu,ibj->ubj" ~inputs:[ "w2"; "d_ff2b" ] ~output:"d_drop2"
           ())
        ();
      Ops.Contraction.einsum ~name:"lin2_dw" ~dims ~backward:true
        (part ~spec:"ubj,ibj->iu" ~inputs:[ "drop2"; "d_ff2b" ] ~output:"d_w2"
           ())
        ();
      Ops.Elementwise.dropout_dx ~name:"ff_dropout_dx" ~dy:"d_drop2"
        ~mask:"mask2" ~out:"d_act" (Hparams.dims_ff hp) ~p:p_drop;
      act_dx_op;
      Ops.Elementwise.bias_dw ~name:"bias1_dw" ~dy:"d_ff1b" ~out:"d_b1"
        (Hparams.dims_ff hp) ~bias_axes:[ "u" ];
      Ops.Contraction.einsum ~name:"lin1_dx" ~dims ~backward:true
        (part ~spec:"ui,ubj->ibj" ~inputs:[ "w1"; "d_ff1b" ]
           ~output:"d_ln1_lin" ())
        ();
      Ops.Contraction.einsum ~name:"lin1_dw" ~dims ~backward:true
        (part ~spec:"ibj,ubj->ui" ~inputs:[ "ln1_out"; "d_ff1b" ]
           ~output:"d_w1" ())
        ();
      Ops.Elementwise.add ~name:"residual2_dx" ~x:"d_ln1_lin" ~y:"d_res2"
        ~out:"d_ln1" (Hparams.dims_x hp) ~backward:true ();
      Ops.Normalization.layernorm_dw ~name:"ln1_dw" ~dy:"d_ln1" ~x:"res1"
        ~mean:"ln1_mean" ~istd:"ln1_istd" ~dgamma:"d_ln1_g" ~dbeta:"d_ln1_b"
        (Hparams.dims_x hp) ~axis:"i";
      Ops.Normalization.layernorm_dx ~name:"ln1_dx" ~dy:"d_ln1" ~x:"res1"
        ~gamma:"ln1_g" ~mean:"ln1_mean" ~istd:"ln1_istd" ~out:"d_res1"
        (Hparams.dims_x hp) ~axis:"i";
      Ops.Elementwise.dropout_dx ~name:"attn_out_dropout_dx" ~dy:"d_res1"
        ~mask:"mask1" ~out:"d_attn_b" (Hparams.dims_x hp) ~p:p_drop;
      Ops.Elementwise.bias_dw ~name:"output_bias_dw" ~dy:"d_attn_b"
        ~out:"d_bo" (Hparams.dims_x hp) ~bias_axes:[ "i" ];
      Ops.Contraction.einsum ~name:"out_dx" ~dims ~backward:true
        (part ~spec:"whi,ibj->whbj" ~inputs:[ "wo"; "d_attn_b" ]
           ~output:"d_gam" ())
        ();
      Ops.Contraction.einsum ~name:"out_dw" ~dims ~backward:true
        (part ~spec:"whbj,ibj->whi" ~inputs:[ "gam"; "d_attn_b" ]
           ~output:"d_wo" ())
        ();
      Ops.Contraction.einsum ~name:"gamma_dx1" ~dims ~backward:true
        (part ~spec:"whbk,whbj->hbjk" ~inputs:[ "vvb"; "d_gam" ]
           ~output:"d_alpha" ())
        ();
      Ops.Contraction.einsum ~name:"gamma_dx2" ~dims ~backward:true
        (part ~spec:"hbjk,whbj->whbk" ~inputs:[ "alpha"; "d_gam" ]
           ~output:"d_vvb" ())
        ();
      Ops.Elementwise.dropout_dx ~name:"attn_dropout_dx" ~dy:"d_alpha"
        ~mask:"attn_mask" ~out:"d_alpha_sm" (Hparams.dims_beta hp) ~p:p_drop;
      Ops.Normalization.softmax_dx ~name:"softmax_dx" ~dy:"d_alpha_sm"
        ~y:"alpha_sm" ~out:"d_beta" (Hparams.dims_beta hp) ~axis:"k" ~prescale
        ();
      Ops.Contraction.einsum ~name:"qkt_dx1" ~dims ~backward:true
        (part ~spec:"phbk,hbjk->phbj" ~inputs:[ "kkb"; "d_beta" ]
           ~output:"d_qqb" ())
        ();
      Ops.Contraction.einsum ~name:"qkt_dx2" ~dims ~backward:true
        (part ~spec:"phbj,hbjk->phbk" ~inputs:[ "qqb"; "d_beta" ]
           ~output:"d_kkb" ())
        ();
      Ops.Elementwise.bias_dw ~name:"bias_q_dw" ~dy:"d_qqb" ~out:"d_bq"
        (Hparams.dims_qq hp) ~bias_axes:[ "p"; "h" ];
      Ops.Elementwise.bias_dw ~name:"bias_k_dw" ~dy:"d_kkb" ~out:"d_bk"
        (Hparams.dims_kk hp) ~bias_axes:[ "p"; "h" ];
      Ops.Elementwise.bias_dw ~name:"bias_v_dw" ~dy:"d_vvb" ~out:"d_bv"
        (Hparams.dims_vv hp) ~bias_axes:[ "w"; "h" ];
     ]
    @ qkv_backward hp variant
    @ [
        Ops.Elementwise.add ~name:"residual1_dx" ~x:"d_x_attn" ~y:"d_res1"
          ~out:"d_x" (Hparams.dims_x hp) ~backward:true ();
      ])

let program_with ?(variant = Qkv_fused) ?(activation = `Relu) ?(causal = false)
    hp =
  Ops.Program.make ~containers:(containers hp)
    (forward_ops ~variant ~activation ~causal hp
    @ backward_ops ~variant ~activation hp)

let program hp = program_with ~variant:Qkv_fused hp

let forward_program hp =
  Ops.Program.make ~containers:(containers hp) (forward_ops hp)

let run hp ~x ~d_y ~params =
  let p = program hp in
  Ops.Program.run p ((("x", x) :: ("d_y", d_y) :: params))

let kernel_names =
  [
    ([ "bias_q"; "bias_k"; "bias_v" ], "AIB");
    ([ "softmax"; "attn_dropout" ], "SM");
    (* streaming-attention windows (only formed under ~attention:true) *)
    ([ "qkt"; "softmax"; "attn_dropout"; "gamma" ], "ATTN");
    ( [ "gamma_dx1"; "gamma_dx2"; "attn_dropout_dx"; "softmax_dx"; "qkt_dx1";
        "qkt_dx2" ],
      "ATTN_dx" );
    ([ "output_bias"; "attn_out_dropout"; "residual1"; "ln1" ], "DRLN");
    ([ "bias1"; "relu"; "ff_dropout" ], "BRD");
    ([ "bias1"; "gelu"; "ff_dropout" ], "BGD");
    ([ "bias2_dw"; "ff_dropout_dx"; "gelu_dx"; "bias1_dw" ], "BDGB");
    ([ "bias2"; "out_dropout"; "residual2"; "ln2" ], "BDRLN");
    ([ "ln2_dw" ], "BSB");
    ([ "ln2_dx"; "out_dropout_dx" ], "BLNRD");
    ([ "bias2_dw"; "ff_dropout_dx"; "relu_dx"; "bias1_dw" ], "BDRB");
    ([ "residual2_dx"; "ln1_dw" ], "EBSB");
    ([ "ln1_dx"; "attn_out_dropout_dx" ], "BLNRD'");
    ([ "output_bias_dw" ], "BAOB");
    ([ "attn_dropout_dx"; "softmax_dx" ], "BS");
    ([ "bias_q_dw"; "bias_k_dw"; "bias_v_dw" ], "BAIB");
    ([ "residual1_dx" ], "BEI");
  ]

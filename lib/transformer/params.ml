let stddev = 0.02

let dims_of hp name =
  match List.assoc_opt name (Encoder.containers hp) with
  | Some dims -> dims
  | None -> invalid_arg ("Params.dims_of: unknown parameter " ^ name)

let init (hp : Hparams.t) =
  let prng = Prng.of_key hp.seed "params" in
  List.map
    (fun name ->
      let dims = dims_of hp name in
      let value =
        if String.length name >= 2 && String.sub name 0 2 = "ln" then
          (* ln*_g starts at one, ln*_b at zero *)
          if name.[String.length name - 1] = 'g' then Dense.full dims 1.0
          else Dense.zeros dims
        else if name.[0] = 'b' then Dense.zeros dims
        else Dense.randn prng dims ~stddev
      in
      (* Weights are long-lived GEMM operands: register them so einsum
         packs each needed layout once instead of on every call (the
         optimizer invalidates the images on in-place updates). *)
      if name.[0] = 'w' then Einsum.register_prepacked value;
      (name, value))
    Encoder.param_names

let random_input (hp : Hparams.t) prng =
  Dense.randn prng (Hparams.dims_x hp) ~stddev:1.0

let random_cotangent (hp : Hparams.t) prng =
  Dense.randn prng (Hparams.dims_x hp) ~stddev:1.0

let zeros_like_grads hp =
  List.map
    (fun name -> (Encoder.grad name, Dense.zeros (dims_of hp name)))
    Encoder.param_names

type t = {
  batch : int;
  seq : int;
  embed : int;
  heads : int;
  proj : int;
  ff : int;
  dropout_p : float;
  seed : int64;
  eps : float;
}

let bert_large =
  {
    batch = 8;
    seq = 512;
    embed = 1024;
    heads = 16;
    proj = 64;
    ff = 4096;
    dropout_p = 0.1;
    seed = 0xBE47L;
    eps = 1e-5;
  }

let bert_large_b96 = { bert_large with batch = 96; seq = 128 }

let tiny =
  {
    batch = 2;
    seq = 3;
    embed = 8;
    heads = 2;
    proj = 4;
    ff = 16;
    dropout_p = 0.25;
    seed = 0x7E57L;
    eps = 1e-5;
  }

let preset ~batch ~seq ~embed ~heads =
  {
    bert_large with
    batch;
    seq;
    embed;
    heads;
    proj = embed / heads;
    ff = 4 * embed;
  }

let presets =
  [
    ("bert-base", preset ~batch:8 ~seq:512 ~embed:768 ~heads:12);
    ("bert-large", bert_large);
    ("gpt2-small", preset ~batch:8 ~seq:1024 ~embed:768 ~heads:12);
    ("gpt2-xl", preset ~batch:4 ~seq:1024 ~embed:1600 ~heads:25);
    ("megatron-8.3b", preset ~batch:2 ~seq:1024 ~embed:3072 ~heads:32);
    ("gpt3-13b", preset ~batch:1 ~seq:2048 ~embed:5120 ~heads:40);
  ]

(* The one place a configuration name becomes an [t]: presets plus the
   historical CLI aliases. *)
let aliases =
  [ ("bert", bert_large); ("b96", bert_large_b96); ("tiny", tiny) ]

let of_name s = List.assoc_opt s (presets @ aliases)
let known_names = List.map fst (presets @ aliases)
let with_batch_seq t ~batch ~seq = { t with batch; seq }
let with_dropout t p = { t with dropout_p = p }
let scaler t = 1.0 /. sqrt (float_of_int t.proj)

let dims t =
  [
    ("i", t.embed);
    ("b", t.batch);
    ("j", t.seq);
    ("k", t.seq);
    ("p", t.proj);
    ("h", t.heads);
    ("w", t.proj);
    ("u", t.ff);
  ]

let pick t axes = List.map (fun a -> (a, List.assoc a (dims t))) axes
let pick_dims = pick
let dims_x t = pick t [ "i"; "b"; "j" ]
let dims_qq t = pick t [ "p"; "h"; "b"; "j" ]
let dims_kk t = pick t [ "p"; "h"; "b"; "k" ]
let dims_vv t = pick t [ "w"; "h"; "b"; "k" ]
let dims_beta t = pick t [ "h"; "b"; "j"; "k" ]
let dims_gamma t = pick t [ "w"; "h"; "b"; "j" ]
let dims_ff t = pick t [ "u"; "b"; "j" ]

let validate t =
  if t.proj * t.heads <> t.embed then
    Error "proj * heads must equal embed (I = P * H)"
  else if t.dropout_p < 0.0 || t.dropout_p >= 1.0 then
    Error "dropout_p must be in [0, 1)"
  else if List.exists (fun (_, d) -> d <= 0) (dims t) then
    Error "all extents must be positive"
  else Ok ()

let pp ppf t =
  Format.fprintf ppf "B=%d L=%d N=%d H=%d P=%d U=%d p_drop=%.2f" t.batch t.seq
    t.embed t.heads t.proj t.ff t.dropout_p

(** Transformer hyperparameters and the axis-name conventions of the paper:

    [i] embedding, [b] batch, [j] query sequence, [k] key sequence,
    [h] heads, [p] query/key projection, [w] value projection, [u]
    feed-forward width. For BERT-style self-attention J = K and P = W. *)

type t = {
  batch : int;  (** B *)
  seq : int;  (** J = K (L in the paper's text) *)
  embed : int;  (** I = N *)
  heads : int;  (** H *)
  proj : int;  (** P = W = I / H *)
  ff : int;  (** U = 4 I *)
  dropout_p : float;
  seed : int64;  (** master seed for dropout masks and initialization *)
  eps : float;  (** layer-norm epsilon *)
}

(** The paper's running configuration: B=8, L=512, N=1024, H=16, P=64. *)
val bert_large : t

(** The paper's §VI-C alternative configuration: B=96, L=128. *)
val bert_large_b96 : t

(** A toy configuration for numerically exercising every code path. *)
val tiny : t

(** Named presets (paper §VIII: other transformers "only differ by
    dimensions and minor aspects"): BERT-base/large, GPT-2 small/XL,
    Megatron-8.3B- and GPT-3-13B-class layers. Sequence lengths follow each
    model's training setup; batch sizes are chosen so a layer fits a 16 GB
    V100. *)
val presets : (string * t) list

(** Resolve a configuration name: any entry of {!presets} plus the
    aliases [bert] (bert-large), [b96], and [tiny]. The single parsing
    point shared by every CLI subcommand and benchmark. *)
val of_name : string -> t option

(** The names {!of_name} accepts, for help strings. *)
val known_names : string list

val with_batch_seq : t -> batch:int -> seq:int -> t
val with_dropout : t -> float -> t

(** [scaler t] is the attention scaling 1/sqrt(P). *)
val scaler : t -> float

(** [dims t] is the master (axis, extent) table covering every axis. *)
val dims : t -> (Axis.t * int) list

(** [pick_dims t axes] selects (axis, extent) pairs in the given order. *)
val pick_dims : t -> Axis.t list -> (Axis.t * int) list

(** Container dimension helpers. *)

val dims_x : t -> (Axis.t * int) list (* [i,b,j] *)
val dims_qq : t -> (Axis.t * int) list (* [p,h,b,j] *)
val dims_kk : t -> (Axis.t * int) list (* [p,h,b,k] *)
val dims_vv : t -> (Axis.t * int) list (* [w,h,b,k] *)
val dims_beta : t -> (Axis.t * int) list (* [h,b,j,k] *)
val dims_gamma : t -> (Axis.t * int) list (* [w,h,b,j] *)
val dims_ff : t -> (Axis.t * int) list (* [u,b,j] *)
val validate : t -> (unit, string) result
val pp : Format.formatter -> t -> unit

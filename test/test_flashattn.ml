(* Streaming tiled attention vs the naive oracle chain.

   The oracle is the exact op sequence the kernel replaces:
   qkt einsum -> softmax(prescale, +mask) -> dropout mask multiply ->
   gamma einsum, built from the same value helpers the ops run. Exact
   mode (one KV tile) must match it bitwise; online mode (streamed KV
   tiles) within a few ulps per element. *)

let q = QCheck_alcotest.to_alcotest
let check_bool = Alcotest.(check bool)

module N = Ops.Normalization
module E = Ops.Elementwise

let dims_beta ~nh ~nb ~nj ~nk = [ ("h", nh); ("b", nb); ("j", nj); ("k", nk) ]

(* The naive chain at value level. [valid.(b)] limits slot b to its first
   valid keys via a 0/-inf pad mask, exactly as Mha.attend builds it. *)
let oracle ?(causal = false) ?valid ?dropmask ~prescale ~qt ~kt ~vt ~nj ~nk
    () =
  let beta = Einsum.eval "phbk,phbj->hbjk" [ kt; qt ] in
  (* masks land after the prescale, exactly where softmax_masked adds them *)
  let masks =
    (if causal then [ N.causal_mask ~q:"j" ~k:"k" [ ("j", nj); ("k", nk) ] ]
     else [])
    @
    match valid with
    | None -> []
    | Some a ->
        [
          Dense.init [ ("b", Array.length a); ("k", nk) ] (fun idx ->
              if List.assoc "k" idx < a.(List.assoc "b" idx) then 0.0
              else neg_infinity);
        ]
  in
  let alpha_sm =
    match masks with
    | [] -> N.softmax_masked beta ~axis:"k" ~prescale
    | ms ->
        let xs = List.fold_left Dense.add_bcast (Dense.scale prescale beta) ms in
        N.softmax_masked xs ~axis:"k" ~prescale:1.0
  in
  let alpha =
    match dropmask with
    | None -> alpha_sm
    | Some m -> Dense.mul alpha_sm m
  in
  (alpha_sm, alpha, Einsum.eval "whbk,hbjk->whbj" [ vt; alpha ])

(* softmax_dx_value, inlined (it is not exported). *)
let softmax_dx ~dy ~y ~prescale =
  let inner = Dense.sum_over (Dense.mul dy y) [ "k" ] in
  let centered = Dense.add_bcast dy (Dense.scale (-1.0) inner) in
  Dense.scale prescale (Dense.mul y centered)

let oracle_grads ?dropmask ~prescale ~qt ~kt ~vt ~alpha_sm ~alpha ~d_out () =
  let d_alpha = Einsum.eval "whbk,whbj->hbjk" [ vt; d_out ] in
  let d_alpha_sm =
    match dropmask with None -> d_alpha | Some m -> Dense.mul d_alpha m
  in
  let d_beta = softmax_dx ~dy:d_alpha_sm ~y:alpha_sm ~prescale in
  let dq = Einsum.eval "phbk,hbjk->phbj" [ kt; d_beta ] in
  let dk = Einsum.eval "phbj,hbjk->phbk" [ qt; d_beta ] in
  let dv = Einsum.eval "hbjk,whbj->whbk" [ alpha; d_out ] in
  (dq, dk, dv)

let bitwise a b =
  Dense.volume a = Dense.volume b
  && Array.for_all2 Float.equal (Dense.unsafe_data a) (Dense.unsafe_data b)

(* random tensors in a layout-shuffled storage order *)
let shuffled_rand prng dims =
  let arr = Array.of_list dims in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Prng.int prng ~bound:(i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Dense.rand prng (Array.to_list arr) ~lo:(-1.0) ~hi:1.0

let make_qkv prng ~np ~nw ~nh ~nb ~nj ~nk =
  ( shuffled_rand prng [ ("p", np); ("h", nh); ("b", nb); ("j", nj) ],
    shuffled_rand prng [ ("p", np); ("h", nh); ("b", nb); ("k", nk) ],
    shuffled_rand prng [ ("w", nw); ("h", nh); ("b", nb); ("k", nk) ] )

(* ---------------- forward vs oracle ---------------- *)

let prop_exact_bitwise =
  QCheck.Test.make
    ~name:"exact mode (kv_tile >= L) equals naive chain bitwise, any layout"
    ~count:40
    QCheck.(
      quad (int_range 1 6) (int_range 1 9) (int_range 1 4) (int_range 1 3))
    (fun (np, nj, nh, nb) ->
      let nk = ((nj * 7) mod 11) + 1 and nw = ((np * 5) mod 7) + 1 in
      let prng =
        Prng.create (Int64.of_int ((np * 131071) + (nj * 257) + (nh * 17) + nb))
      in
      let qt, kt, vt = make_qkv prng ~np ~nw ~nh ~nb ~nj ~nk in
      let prescale = 1.0 /. sqrt (float_of_int np) in
      let _, _, want = oracle ~prescale ~qt ~kt ~vt ~nj ~nk () in
      let got, _ =
        Flashattn.forward ~q_tile:3 ~kv_tile:nk ~stats:false ~prescale ~q:qt
          ~k:kt ~v:vt ()
      in
      bitwise want got)

let prop_online_close =
  QCheck.Test.make
    ~name:"online mode (streamed KV tiles) within ulps of the oracle"
    ~count:40
    QCheck.(
      quad (int_range 1 6) (int_range 8 40) (int_range 1 3) (int_range 1 3))
    (fun (np, nj, nh, nb) ->
      let nk = nj + (np mod 5) and nw = np in
      let prng =
        Prng.create (Int64.of_int ((np * 8191) + (nj * 101) + (nh * 13) + nb))
      in
      let qt, kt, vt = make_qkv prng ~np ~nw ~nh ~nb ~nj ~nk in
      let prescale = 1.0 /. sqrt (float_of_int np) in
      let _, _, want = oracle ~prescale ~qt ~kt ~vt ~nj ~nk () in
      let got, _ =
        Flashattn.forward ~q_tile:4 ~kv_tile:5 ~stats:false ~prescale ~q:qt
          ~k:kt ~v:vt ()
      in
      Dense.approx_equal ~rtol:1e-13 ~atol:1e-15 want got)

let test_causal_and_skipping () =
  let np = 8 and nw = 8 and nh = 2 and nb = 2 and nj = 64 in
  let nk = nj in
  let prng = Prng.create 42L in
  let qt, kt, vt = make_qkv prng ~np ~nw ~nh ~nb ~nj ~nk in
  let prescale = 1.0 /. sqrt 8.0 in
  let _, _, want = oracle ~causal:true ~prescale ~qt ~kt ~vt ~nj ~nk () in
  (* exact mode: bitwise even under the causal mask *)
  let got, _ =
    Flashattn.forward ~kv_tile:nk ~causal:true ~stats:false ~prescale ~q:qt
      ~k:kt ~v:vt ()
  in
  check_bool "causal exact bitwise" true (bitwise want got);
  (* online mode: tiles above the diagonal must be skipped untouched *)
  Flashattn.reset_counters ();
  let got2, _ =
    Flashattn.forward ~q_tile:8 ~kv_tile:8 ~causal:true ~stats:false ~prescale
      ~q:qt ~k:kt ~v:vt ()
  in
  let c = Flashattn.counters () in
  check_bool "causal online close" true
    (Dense.approx_equal ~rtol:1e-13 ~atol:1e-15 want got2);
  check_bool "masked tiles skipped" true (c.tiles_skipped > 0);
  (* per (h,b,q-tile): 8 q-tiles x 8 kv-tiles, about half above diagonal *)
  check_bool "visited + skipped = all tiles" true
    (c.tiles_visited + c.tiles_skipped = nh * nb * 8 * 8)

let test_ragged_valid () =
  let np = 4 and nw = 6 and nh = 2 and nb = 3 and nj = 1 and nk = 9 in
  let prng = Prng.create 7L in
  let qt, kt, vt = make_qkv prng ~np ~nw ~nh ~nb ~nj ~nk in
  let valid = [| 3; 9; 5 |] in
  let prescale = 1.0 /. sqrt 4.0 in
  let _, _, want = oracle ~valid ~prescale ~qt ~kt ~vt ~nj ~nk () in
  let got, _ =
    Flashattn.forward ~kv_tile:nk ~valid ~stats:false ~prescale ~q:qt ~k:kt
      ~v:vt ()
  in
  check_bool "ragged valid bitwise" true (bitwise want got)

(* ---------------- dropout ---------------- *)

let test_dropout_bitwise () =
  let np = 8 and nw = 8 and nh = 2 and nb = 2 and nj = 12 and nk = 16 in
  let prng = Prng.create 99L in
  let qt, kt, vt = make_qkv prng ~np ~nw ~nh ~nb ~nj ~nk in
  let prescale = 1.0 /. sqrt 8.0 in
  let p = 0.35 and seed = 1234L and key = "attn_dropout" in
  let dims = dims_beta ~nh ~nb ~nj ~nk in
  let dropmask = E.dropout_mask ~seed ~name:key dims ~p in
  let _, _, want = oracle ~dropmask ~prescale ~qt ~kt ~vt ~nj ~nk () in
  let dropout = { Flashattn.p; seed; key; dims } in
  let got, _ =
    Flashattn.forward ~kv_tile:nk ~dropout ~stats:false ~prescale ~q:qt ~k:kt
      ~v:vt ()
  in
  check_bool "dropout exact bitwise (counter-based = sequential walk)" true
    (bitwise want got);
  (* tiled draws must still agree with the sequential mask walk *)
  let got2, _ =
    Flashattn.forward ~q_tile:5 ~kv_tile:6 ~dropout ~stats:false ~prescale
      ~q:qt ~k:kt ~v:vt ()
  in
  check_bool "dropout online close" true
    (Dense.approx_equal ~rtol:1e-13 ~atol:1e-15 want got2)

(* ---------------- logsumexp stats ---------------- *)

let test_lse_roundtrip () =
  let np = 6 and nw = 6 and nh = 2 and nb = 2 and nj = 10 and nk = 14 in
  let prng = Prng.create 5L in
  let qt, kt, vt = make_qkv prng ~np ~nw ~nh ~nb ~nj ~nk in
  let prescale = 1.0 /. sqrt 6.0 in
  let _, lse = Flashattn.forward ~kv_tile:nk ~prescale ~q:qt ~k:kt ~v:vt () in
  let lse = Option.get lse in
  (* the saved stat is exactly logsumexp of the prescaled scores *)
  let beta = Einsum.eval ~scale:prescale "phbk,phbj->hbjk" [ kt; qt ] in
  let mx = Dense.max_over beta [ "k" ] in
  let s =
    Dense.sum_over
      (Dense.map exp (Dense.add_bcast beta (Dense.scale (-1.0) mx)))
      [ "k" ]
  in
  let want = Dense.add mx (Dense.map log s) in
  check_bool "lse equals logsumexp of scores" true
    (Dense.approx_equal ~rtol:1e-13 ~atol:1e-15 want lse);
  (* backward with the saved stat == backward recomputing it, bitwise *)
  let d_out = Dense.rand prng [ ("w", nw); ("h", nh); ("b", nb); ("j", nj) ] ~lo:(-1.0) ~hi:1.0 in
  let dq1, dk1, dv1 =
    Flashattn.backward ~lse ~prescale ~q:qt ~k:kt ~v:vt ~d_out ()
  in
  let dq2, dk2, dv2 =
    Flashattn.backward ~prescale ~q:qt ~k:kt ~v:vt ~d_out ()
  in
  check_bool "saved lse == recomputed lse (dq)" true (bitwise dq1 dq2);
  check_bool "saved lse == recomputed lse (dk)" true (bitwise dk1 dk2);
  check_bool "saved lse == recomputed lse (dv)" true (bitwise dv1 dv2)

(* ---------------- backward vs oracle ---------------- *)

let prop_backward_close =
  QCheck.Test.make
    ~name:"backward (recomputed tiles) matches oracle grads within ulps"
    ~count:30
    QCheck.(
      quad (int_range 1 5) (int_range 2 12) (int_range 1 3) (int_range 1 2))
    (fun (np, nj, nh, nb) ->
      let nk = nj + 2 and nw = np + 1 in
      let prng =
        Prng.create (Int64.of_int ((np * 523) + (nj * 31) + (nh * 7) + nb))
      in
      let qt, kt, vt = make_qkv prng ~np ~nw ~nh ~nb ~nj ~nk in
      let prescale = 1.0 /. sqrt (float_of_int np) in
      let d_out =
        shuffled_rand prng [ ("w", nw); ("h", nh); ("b", nb); ("j", nj) ]
      in
      let alpha_sm, alpha, _ = oracle ~prescale ~qt ~kt ~vt ~nj ~nk () in
      let wq, wk, wv =
        oracle_grads ~prescale ~qt ~kt ~vt ~alpha_sm ~alpha ~d_out ()
      in
      let gq, gk, gv =
        Flashattn.backward ~prescale ~q:qt ~k:kt ~v:vt ~d_out ()
      in
      Dense.approx_equal ~rtol:1e-12 ~atol:1e-14 wq gq
      && Dense.approx_equal ~rtol:1e-12 ~atol:1e-14 wk gk
      && Dense.approx_equal ~rtol:1e-12 ~atol:1e-14 wv gv)

let test_backward_causal_dropout () =
  let np = 8 and nw = 8 and nh = 2 and nb = 2 and nj = 24 in
  let nk = nj in
  let prng = Prng.create 11L in
  let qt, kt, vt = make_qkv prng ~np ~nw ~nh ~nb ~nj ~nk in
  let prescale = 1.0 /. sqrt 8.0 in
  let p = 0.25 and seed = 77L and key = "attn_dropout" in
  let dims = dims_beta ~nh ~nb ~nj ~nk in
  let dropmask = E.dropout_mask ~seed ~name:key dims ~p in
  let d_out = Dense.rand prng [ ("w", nw); ("h", nh); ("b", nb); ("j", nj) ] ~lo:(-1.0) ~hi:1.0 in
  let alpha_sm, alpha, _ =
    oracle ~causal:true ~dropmask ~prescale ~qt ~kt ~vt ~nj ~nk ()
  in
  let wq, wk, wv =
    oracle_grads ~dropmask ~prescale ~qt ~kt ~vt ~alpha_sm ~alpha ~d_out ()
  in
  let dropout = { Flashattn.p; seed; key; dims } in
  let gq, gk, gv =
    Flashattn.backward ~causal:true ~dropout ~prescale ~q:qt ~k:kt ~v:vt
      ~d_out ()
  in
  check_bool "dq" true (Dense.approx_equal ~rtol:1e-12 ~atol:1e-14 wq gq);
  check_bool "dk" true (Dense.approx_equal ~rtol:1e-12 ~atol:1e-14 wk gk);
  check_bool "dv" true (Dense.approx_equal ~rtol:1e-12 ~atol:1e-14 wv gv)

(* ---------------- KV-cache incremental decode ---------------- *)

let test_incremental_equals_full () =
  let np = 8 and nw = 8 and nh = 2 and nb = 2 and nj = 12 in
  let nk = nj in
  let prng = Prng.create 23L in
  let qt, kt, vt = make_qkv prng ~np ~nw ~nh ~nb ~nj ~nk in
  let prescale = 1.0 /. sqrt 8.0 in
  let full, _ =
    Flashattn.forward ~kv_tile:nk ~causal:true ~stats:false ~prescale ~q:qt
      ~k:kt ~v:vt ()
  in
  (* each decode step: one query column against its visible prefix,
     expressed through the ragged [valid] limit like the serving path *)
  for j = 0 to nj - 1 do
    let qstep =
      Dense.init [ ("p", np); ("h", nh); ("b", nb); ("j", 1) ] (fun idx ->
          Dense.get qt (("j", j) :: List.remove_assoc "j" idx))
    in
    let valid = Array.make nb (j + 1) in
    let step, _ =
      Flashattn.forward ~kv_tile:nk ~valid ~stats:false ~prescale ~q:qstep
        ~k:kt ~v:vt ()
    in
    for w = 0 to nw - 1 do
      for h = 0 to nh - 1 do
        for b = 0 to nb - 1 do
          let f =
            Dense.get full [ ("w", w); ("h", h); ("b", b); ("j", j) ]
          in
          let s =
            Dense.get step [ ("w", w); ("h", h); ("b", b); ("j", 0) ]
          in
          check_bool "incremental step == full-prefix row, bitwise" true
            (Float.equal f s)
        done
      done
    done
  done

(* ---------------- parallel determinism ---------------- *)

let test_parallel_determinism () =
  let np = 8 and nw = 8 and nh = 2 and nb = 2 and nj = 64 in
  let nk = nj in
  let prng = Prng.create 301L in
  let qt, kt, vt = make_qkv prng ~np ~nw ~nh ~nb ~nj ~nk in
  let prescale = 1.0 /. sqrt 8.0 in
  let d_out = Dense.rand prng [ ("w", nw); ("h", nh); ("b", nb); ("j", nj) ] ~lo:(-1.0) ~hi:1.0 in
  let run () =
    let out, lse =
      Flashattn.forward ~q_tile:8 ~kv_tile:16 ~causal:true ~prescale ~q:qt
        ~k:kt ~v:vt ()
    in
    let dq, dk, dv =
      Flashattn.backward ~causal:true ~prescale ~q:qt ~k:kt ~v:vt ~d_out ()
    in
    (out, Option.get lse, dq, dk, dv)
  in
  let o1, l1, q1, k1, v1 = Pool.with_domains 1 run in
  let o4, l4, q4, k4, v4 = Pool.with_domains 4 run in
  check_bool "out serial == parallel" true (bitwise o1 o4);
  check_bool "lse serial == parallel" true (bitwise l1 l4);
  check_bool "dq serial == parallel" true (bitwise q1 q4);
  check_bool "dk serial == parallel" true (bitwise k1 k4);
  check_bool "dv serial == parallel" true (bitwise v1 v4)

(* ---------------- graph-level fusion ---------------- *)

let nt = Transformer.Encoder.kernel_names

let test_attention_grouping () =
  let hp = Transformer.Hparams.tiny in
  let program = Transformer.Encoder.program hp in
  let names g = List.map (fun (x : Substation.Fusion.group) -> x.fused.Ops.Op.name) g in
  let with_attn =
    names (Substation.Fusion.groups ~name_table:nt ~attention:true program)
  in
  check_bool "ATTN window formed" true (List.mem "ATTN" with_attn);
  check_bool "ATTN_dx window formed" true (List.mem "ATTN_dx" with_attn);
  check_bool "default grouping unchanged" false
    (List.mem "ATTN"
       (names (Substation.Fusion.groups ~name_table:nt program)));
  (* the streaming window elides the L x L score containers *)
  let attn =
    List.find
      (fun (g : Substation.Fusion.group) ->
        String.equal g.fused.Ops.Op.name "ATTN")
      (Substation.Fusion.groups ~name_table:nt ~attention:true program)
  in
  Alcotest.(check (list string))
    "ATTN writes only the context" [ "gam" ] attn.fused.Ops.Op.writes

let run_encoder program hp =
  let prng = Prng.create 99L in
  let params = Transformer.Params.init hp in
  let x = Transformer.Params.random_input hp prng in
  let d_y = Transformer.Params.random_cotangent hp prng in
  Ops.Program.run program (("x", x) :: ("d_y", d_y) :: params)

let test_attention_fusion_semantics causal () =
  let hp = Transformer.Hparams.tiny in
  let program = Transformer.Encoder.program_with ~causal hp in
  let fused = Substation.Fusion.fuse ~name_table:nt ~attention:true program in
  let env1 = Fastmode.with_naive (fun () -> run_encoder program hp) in
  let env2 = Fastmode.with_mode true (fun () -> run_encoder fused hp) in
  let get env c = Ops.Op.lookup env c in
  (* forward runs in exact mode (kv_tile >= L): bitwise, through to y *)
  check_bool "gam bitwise" true (bitwise (get env1 "gam") (get env2 "gam"));
  check_bool "y bitwise" true (bitwise (get env1 "y") (get env2 "y"));
  (* the backward streaming kernel recomputes probabilities from the
     logsumexp stat: equal within ulps, not bitwise *)
  List.iter
    (fun c ->
      check_bool (c ^ " close") true
        (Dense.approx_equal ~rtol:1e-11 ~atol:1e-13 (get env1 c) (get env2 c)))
    [ "d_qqb"; "d_kkb"; "d_vvb"; "d_x"; "d_w1"; "d_wo" ];
  (* score-matrix containers were never materialized on the fast path *)
  check_bool "alpha elided" false (Hashtbl.mem env2 "alpha");
  check_bool "beta elided" false (Hashtbl.mem env2 "beta")

let () =
  Alcotest.run "flashattn"
    [
      ( "forward",
        [
          q prop_exact_bitwise;
          q prop_online_close;
          Alcotest.test_case "causal masking + tile skipping" `Quick
            test_causal_and_skipping;
          Alcotest.test_case "ragged valid lengths" `Quick test_ragged_valid;
        ] );
      ( "dropout",
        [ Alcotest.test_case "counter-based mask" `Quick test_dropout_bitwise ] );
      ( "backward",
        [
          q prop_backward_close;
          Alcotest.test_case "lse stat round-trip" `Quick test_lse_roundtrip;
          Alcotest.test_case "causal + dropout grads" `Quick
            test_backward_causal_dropout;
        ] );
      ( "serving",
        [
          Alcotest.test_case "incremental decode == full prefix" `Quick
            test_incremental_equals_full;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "serial == parallel, fwd+bwd" `Quick
            test_parallel_determinism;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "attention windows recognized" `Quick
            test_attention_grouping;
          Alcotest.test_case "encoder: fused == naive" `Quick
            (test_attention_fusion_semantics false);
          Alcotest.test_case "decoder (causal): fused == naive" `Quick
            (test_attention_fusion_semantics true);
        ] );
    ]

(* Tests for the static memory planner and weight prepacking: planned
   execution must be bitwise-equal to the allocate-everything oracle
   (serial and parallel, fast and naive, unfused and fused), in-place and
   alias placement must respect lifetime legality, prepacked GEMM images
   must match per-call packing bitwise and survive optimizer updates via
   invalidation, and the einsum plan cache must key on the execution
   regime (fast mode, domain count). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bits_equal a b =
  let a = Dense.align a b in
  Array.for_all2
    (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
    (Dense.unsafe_data a) (Dense.unsafe_data b)

let tiny = Transformer.Hparams.tiny
let device = Gpu.Device.v100

let layer_inputs hp seed =
  let prng = Prng.create seed in
  let params = Transformer.Params.init hp in
  let x = Transformer.Params.random_input hp prng in
  let d_y = Transformer.Params.random_cotangent hp prng in
  ("x", x) :: ("d_y", d_y) :: params

(* Planned env must be a subset of the oracle env (dead intermediates are
   dropped) and bitwise-equal on every container it kept. *)
let planned_agrees ~name ?keep program inputs ~fast =
  let env_ref =
    Fastmode.with_mode fast (fun () -> Ops.Program.run program inputs)
  in
  let mp = Ops.Memplan.plan ?keep program in
  let env_pl =
    Fastmode.with_mode fast (fun () -> Ops.Memplan.execute mp inputs)
  in
  let compared = ref 0 in
  Hashtbl.iter
    (fun c t_pl ->
      match Hashtbl.find_opt env_ref c with
      | None -> Alcotest.failf "%s: planned env kept unknown container %s" name c
      | Some t_ref ->
          incr compared;
          if not (bits_equal t_ref t_pl) then
            Alcotest.failf "%s: container %s differs from oracle" name c)
    env_pl;
  check_bool
    (Printf.sprintf "%s: compared some containers" name)
    true (!compared > 0);
  (env_pl, Ops.Memplan.stats mp)

let encoder_fused hp =
  Substation.Fusion.fuse ~name_table:Transformer.Encoder.kernel_names
    (Transformer.Encoder.program hp)

(* ---------------- planned == oracle, encoder fwd+bwd ---------------- *)

let test_encoder_planned_bitwise () =
  let inputs = layer_inputs tiny 11L in
  List.iter
    (fun fast ->
      let tag = if fast then "fast" else "naive" in
      let env, _ =
        planned_agrees
          ~name:("encoder unfused " ^ tag)
          (Transformer.Encoder.program tiny)
          inputs ~fast
      in
      List.iter
        (fun c ->
          check_bool
            (Printf.sprintf "unfused %s keeps %s" tag c)
            true
            (Hashtbl.mem env c))
        [ "y"; "d_x"; "d_wq"; "d_w2" ];
      let env_f, _ =
        planned_agrees
          ~name:("encoder fused " ^ tag)
          (encoder_fused tiny) inputs ~fast
      in
      check_bool
        (Printf.sprintf "fused %s keeps y" tag)
        true (Hashtbl.mem env_f "y"))
    [ false; true ]

let test_encoder_keep () =
  let inputs = layer_inputs tiny 13L in
  let env, _ =
    planned_agrees ~name:"encoder keep" ~keep:[ "ln1_out" ]
      (Transformer.Encoder.program tiny)
      inputs ~fast:true
  in
  check_bool "kept intermediate survives" true (Hashtbl.mem env "ln1_out")

(* ---------------- peak-reduction acceptance ---------------- *)

let test_peak_reduction () =
  List.iter
    (fun (tag, program) ->
      let mp = Ops.Memplan.plan program in
      let s = Ops.Memplan.stats mp in
      check_bool
        (Printf.sprintf
           "%s: planned resident set <= 75%% of naive (plan %d naive %d)" tag
           s.Ops.Memplan.plan_peak_floats s.Ops.Memplan.naive_peak_floats)
        true
        (float_of_int s.Ops.Memplan.plan_peak_floats
        <= 0.75 *. float_of_int s.Ops.Memplan.naive_peak_floats))
    [
      ("encoder unfused", Transformer.Encoder.program tiny);
      ("encoder fused", encoder_fused tiny);
    ]

(* ---------------- hand-built programs: legality ---------------- *)

let dims = [ ("a", 4); ("b", 6) ]

let chain_inputs seed =
  let prng = Prng.create seed in
  [ ("x0", Dense.rand prng dims ~lo:(-1.0) ~hi:1.0) ]

let test_inplace_taken_when_legal () =
  (* x0 -> relu t1 -> gelu t2 -> tanh t3 -> sigmoid y: t1 and t2 each die
     at their consumer, whose output does not escape, so both interior
     consumers overwrite their input. The final op's output [y] escapes to
     the caller and must NOT be produced in place. *)
  let ops =
    [
      Ops.Elementwise.relu ~name:"r" ~x:"x0" ~out:"t1" dims ();
      Ops.Elementwise.gelu ~name:"g" ~x:"t1" ~out:"t2" dims ();
      Ops.Elementwise.tanh_ ~name:"t" ~x:"t2" ~out:"t3" dims ();
      Ops.Elementwise.sigmoid ~name:"s" ~x:"t3" ~out:"y" dims ();
    ]
  in
  let program =
    Ops.Program.make
      ~containers:
        [ ("x0", dims); ("t1", dims); ("t2", dims); ("t3", dims); ("y", dims) ]
      ops
  in
  let _, s =
    planned_agrees ~name:"inplace chain" program (chain_inputs 3L) ~fast:false
  in
  check_int "both interior ops run in place" 2 s.Ops.Memplan.inplace

let test_inplace_refused_for_live_source () =
  (* t1 is read again after the gelu, and both outputs escape: nothing may
     run in place or alias. *)
  let ops =
    [
      Ops.Elementwise.relu ~name:"r" ~x:"x0" ~out:"t1" dims ();
      Ops.Elementwise.gelu ~name:"g" ~x:"t1" ~out:"y1" dims ();
      Ops.Elementwise.tanh_ ~name:"t" ~x:"t1" ~out:"y2" dims ();
    ]
  in
  let program =
    Ops.Program.make
      ~containers:
        [ ("x0", dims); ("t1", dims); ("y1", dims); ("y2", dims) ]
      ops
  in
  let _, s =
    planned_agrees ~name:"live source" program (chain_inputs 5L) ~fast:false
  in
  check_int "no in-place with a later reader" 0 s.Ops.Memplan.inplace;
  check_int "no aliasing of escaping outputs" 0 s.Ops.Memplan.aliased

let test_alias_vs_copy_fallback () =
  (* copy of a slot-backed intermediate aliases; copy of a pinned input
     must be a real copy (a later in-place op would otherwise clobber the
     caller's tensor). *)
  let alias_prog =
    Ops.Program.make
      ~containers:
        [ ("x0", dims); ("t1", dims); ("t2", dims); ("y", dims) ]
      [
        Ops.Elementwise.relu ~name:"r" ~x:"x0" ~out:"t1" dims ();
        Ops.Elementwise.copy ~name:"c" ~x:"t1" ~out:"t2" dims ();
        Ops.Elementwise.gelu ~name:"g" ~x:"t2" ~out:"y" dims ();
      ]
  in
  let _, s =
    planned_agrees ~name:"alias copy" alias_prog (chain_inputs 7L) ~fast:false
  in
  check_int "slot-backed copy aliased" 1 s.Ops.Memplan.aliased;
  let copy_prog =
    Ops.Program.make
      ~containers:[ ("x0", dims); ("t2", dims); ("y", dims) ]
      [
        Ops.Elementwise.copy ~name:"c" ~x:"x0" ~out:"t2" dims ();
        Ops.Elementwise.gelu ~name:"g" ~x:"t2" ~out:"y" dims ();
      ]
  in
  let _, s2 =
    planned_agrees ~name:"pinned copy" copy_prog (chain_inputs 9L) ~fast:false
  in
  check_int "pinned source copied for real" 0 s2.Ops.Memplan.aliased

(* ---------------- randomized layouts through dropout ---------------- *)

let test_random_layout_chains () =
  (* Element-wise chains (including dropout's mask stream) over inputs in
     permuted storage orders: planned interpretation walks operands by
     strides, so every layout must still match the oracle bitwise. *)
  List.iter
    (fun seed ->
      let prng = Prng.create (Int64.of_int seed) in
      let d3 = [ ("a", 3); ("b", 4); ("c", 5) ] in
      let x = Dense.rand prng d3 ~lo:(-1.0) ~hi:1.0 in
      let x =
        if seed mod 2 = 0 then Dense.permute x [ "c"; "a"; "b" ] else x
      in
      let ops =
        [
          Ops.Elementwise.gelu ~name:"g" ~x:"x0" ~out:"t1" d3 ();
          Ops.Elementwise.dropout ~name:"d" ~x:"t1" ~out:"t2" ~mask:"m" d3
            ~p:0.25 ~seed:(Int64.of_int (seed * 31)) ();
          Ops.Elementwise.add ~name:"a" ~x:"t2" ~y:"x0" ~out:"y" d3 ();
        ]
      in
      let program =
        Ops.Program.make
          ~containers:
            [ ("x0", d3); ("t1", d3); ("t2", d3); ("m", d3); ("y", d3) ]
          ops
      in
      ignore
        (planned_agrees
           ~name:(Printf.sprintf "layout chain %d" seed)
           program
           [ ("x0", x) ]
           ~fast:false))
    [ 1; 2; 3; 4 ]

(* ---------------- serial == parallel ---------------- *)

let test_planned_serial_equals_parallel () =
  let program = encoder_fused tiny in
  let inputs = layer_inputs tiny 17L in
  let mp = Ops.Memplan.plan program in
  let run n =
    Pool.with_domains n (fun () ->
        Fastmode.with_mode true (fun () -> Ops.Memplan.execute mp inputs))
  in
  let env1 = run 1 in
  let env4 = run 4 in
  Hashtbl.iter
    (fun c t1 ->
      match Hashtbl.find_opt env4 c with
      | None -> Alcotest.failf "parallel env missing %s" c
      | Some t4 ->
          if not (bits_equal t1 t4) then
            Alcotest.failf "serial/parallel differ on %s" c)
    env1

(* ---------------- executor integration ---------------- *)

let test_run_planned_guard_and_fallback () =
  let plan =
    Frameworks.Pytorch_sim.plan ~device
      ~workload:Frameworks.Executor.Encoder_layer tiny
  in
  let inputs = layer_inputs tiny 19L in
  let env_ref = Frameworks.Executor.run_functional ~fast:true plan inputs in
  let env_pl = Frameworks.Executor.run_planned ~fast:true plan inputs in
  check_bool "run_planned matches run_functional on y" true
    (bits_equal
       (Ops.Op.lookup env_ref "y")
       (Ops.Op.lookup env_pl "y"));
  (* the numerical guard scans planned writes too *)
  let prng = Prng.create 23L in
  let bad = Transformer.Params.random_input tiny prng in
  (Dense.unsafe_data bad).(0) <- Float.nan;
  let bad_inputs =
    ("x", bad) :: List.remove_assoc "x" inputs
  in
  (try
     ignore (Frameworks.Executor.run_planned ~fast:true plan bad_inputs);
     Alcotest.fail "expected Numerical_fault through the planned path"
   with Frameworks.Executor.Numerical_fault _ -> ());
  (* SUBSTATION_NOPLAN escape hatch: disabled planning falls back to the
     unplanned interpreter, which retains every intermediate *)
  Ops.Memplan.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Ops.Memplan.set_enabled true)
    (fun () ->
      let env_off = Frameworks.Executor.run_planned ~fast:true plan inputs in
      check_bool "disabled planner retains intermediates" true
        (Hashtbl.mem env_off "ln1_out"))

(* ---------------- plan-cache regime keying ---------------- *)

let test_plan_cache_keys_on_domains () =
  Einsum.clear_caches ();
  let prng = Prng.create 29L in
  let a = Dense.rand prng [ ("b", 3); ("m", 8); ("k", 8) ] ~lo:(-1.0) ~hi:1.0 in
  let b = Dense.rand prng [ ("b", 3); ("k", 8); ("n", 8) ] ~lo:(-1.0) ~hi:1.0 in
  let eval n =
    Pool.with_domains n (fun () ->
        Einsum.contract ~fast:true [ a; b ] ~out:[ "b"; "m"; "n" ])
  in
  let r1 = eval 1 in
  let m1 = (Einsum.cache_stats ()).Einsum.misses in
  let r4 = eval 4 in
  let m2 = (Einsum.cache_stats ()).Einsum.misses in
  check_int "distinct domain counts compile distinct plans" (m1 + 1) m2;
  let r1' = eval 1 in
  let s = Einsum.cache_stats () in
  check_int "repeat under the same regime misses nothing" m2 s.Einsum.misses;
  check_bool "repeat hits the cached plan" true (s.Einsum.hits > 0);
  check_bool "same result under either regime" true
    (bits_equal r1 r4 && bits_equal r1 r1')

(* ---------------- weight prepacking ---------------- *)

let test_prepack_bitwise_and_invalidation () =
  Einsum.clear_prepacked ();
  let prng = Prng.create 31L in
  (* decode out-projection shape: "whi,whbj->ibj" reads wo through a
     non-direct row view, the prepack target *)
  let wo =
    Dense.rand prng [ ("w", 4); ("h", 3); ("i", 5) ] ~lo:(-1.0) ~hi:1.0
  in
  let g = Dense.rand prng [ ("w", 4); ("h", 3); ("b", 2); ("j", 6) ] ~lo:(-1.0) ~hi:1.0 in
  let out = [ "i"; "b"; "j" ] in
  let fresh () = Einsum.contract ~fast:true [ wo; g ] ~out in
  let baseline = fresh () in
  Einsum.register_prepacked wo;
  let s0 = Einsum.prepack_stats () in
  let first = fresh () in
  let second = fresh () in
  let s1 = Einsum.prepack_stats () in
  check_bool "prepacked result bitwise equals per-call packing" true
    (bits_equal baseline first && bits_equal baseline second);
  check_bool "image built once" true
    (s1.Einsum.pp_builds = s0.Einsum.pp_builds + 1);
  check_bool "second call hit the image" true (s1.Einsum.pp_hits > s0.Einsum.pp_hits);
  (* in-place weight mutation + invalidation -> image rebuilt, result
     tracks the new weight *)
  (Dense.unsafe_data wo).(0) <- 2.5;
  Einsum.invalidate_prepacked wo;
  let updated = fresh () in
  Einsum.set_prepack_enabled false;
  let reference =
    Fun.protect
      ~finally:(fun () -> Einsum.set_prepack_enabled true)
      fresh
  in
  check_bool "post-update result tracks the mutated weight" true
    (bits_equal updated reference);
  Einsum.clear_prepacked ()

let model_hp =
  { (Transformer.Hparams.with_dropout tiny 0.0) with
    Transformer.Hparams.batch = 2;
    seq = 4;
  }

let test_decode_prepack_on_off_bitwise () =
  (* KV-cached decode (decode_batch -> Mha.attend) reads the wo
     out-projection through the non-direct view the prepack targets. *)
  let m = Transformer.Model.create ~n_layers:1 ~vocab:7 model_hp in
  let prompt = [| 1; 3; 2; 5 |] in
  let decode_run () =
    let s = Transformer.Model.new_session m in
    Fastmode.with_mode true (fun () ->
        Array.to_list prompt
        |> List.concat_map (fun tok ->
               Array.to_list
                 (Transformer.Model.logits_column
                    (Transformer.Model.decode_batch m [| s |] ~tokens:[| tok |])
                    ~b:0)))
  in
  let s0 = Einsum.prepack_stats () in
  let on = decode_run () in
  let s1 = Einsum.prepack_stats () in
  Einsum.set_prepack_enabled false;
  let off =
    Fun.protect ~finally:(fun () -> Einsum.set_prepack_enabled true) decode_run
  in
  check_bool "decode served from prepacked images" true
    (s1.Einsum.pp_hits > s0.Einsum.pp_hits);
  check_bool "decode logits bitwise equal with prepack on/off" true
    (List.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       on off)

let test_optimizer_update_repacks () =
  (* identical models; one steps with prepack enabled, the other with the
     feature off entirely. In-place updates must invalidate the images, so
     the post-update logits agree bitwise. *)
  let run_with_prepack enabled =
    Einsum.set_prepack_enabled enabled;
    Fun.protect
      ~finally:(fun () -> Einsum.set_prepack_enabled true)
      (fun () ->
        let m = Transformer.Model.create ~n_layers:1 ~vocab:5 model_hp in
        let tokens = [| [| 1; 2; 3; 0 |]; [| 4; 0; 2; 1 |] |] in
        ignore (Transformer.Training.step m ~tokens ~targets:tokens ~lr:0.1);
        ignore (Transformer.Training.step m ~tokens ~targets:tokens ~lr:0.1);
        (Transformer.Model.forward m ~tokens).Transformer.Model.logits)
  in
  let with_pp = run_with_prepack true in
  let without_pp = run_with_prepack false in
  check_bool "two SGD steps with prepack == without, bitwise" true
    (bits_equal with_pp without_pp)

let test_interrupted_training_then_planned_run () =
  (* a crash/resume cycle (which restores weights in place, invalidating
     any prepacked images) followed by planned execution over the restored
     weights: everything stays bitwise-equal to the uninterrupted path *)
  let ckpt = Filename.temp_file "substation-memplan" ".ckpt" in
  Sys.remove ckpt;
  let steps = 3 and lr = 0.05 in
  let m_ref = Transformer.Model.create ~n_layers:1 ~vocab:5 model_hp in
  ignore (Transformer.Training.train m_ref ~steps ~lr (Prng.create 7L));
  let m = Transformer.Model.create ~n_layers:1 ~vocab:5 model_hp in
  let prng = Prng.create 7L in
  let rec go () =
    match
      Transformer.Training.train ~checkpoint:ckpt ~interrupt_after:1 m ~steps
        ~lr prng
    with
    | h -> h
    | exception Transformer.Training.Interrupted _ -> go ()
  in
  ignore (go ());
  let tokens = [| [| 1; 2; 3; 0 |]; [| 4; 0; 2; 1 |] |] in
  check_bool "resumed model bitwise equals uninterrupted" true
    (bits_equal
       (Transformer.Model.forward m_ref ~tokens).Transformer.Model.logits
       (Transformer.Model.forward m ~tokens).Transformer.Model.logits);
  (* planned encoder execution over layer-0 weights of the resumed model *)
  let prng = Prng.create 41L in
  let inputs =
    ("x", Transformer.Params.random_input model_hp prng)
    :: ("d_y", Transformer.Params.random_cotangent model_hp prng)
    :: m.Transformer.Model.layer_params.(0)
  in
  ignore
    (planned_agrees ~name:"planned over resumed weights"
       (Transformer.Encoder.program model_hp)
       inputs ~fast:true)

let () =
  Alcotest.run "memplan"
    [
      ( "planned",
        [
          Alcotest.test_case "encoder fwd+bwd bitwise" `Quick
            test_encoder_planned_bitwise;
          Alcotest.test_case "keep-list" `Quick test_encoder_keep;
          Alcotest.test_case "peak reduction >= 25%" `Quick
            test_peak_reduction;
          Alcotest.test_case "serial == parallel" `Quick
            test_planned_serial_equals_parallel;
        ] );
      ( "placement",
        [
          Alcotest.test_case "in-place when legal" `Quick
            test_inplace_taken_when_legal;
          Alcotest.test_case "in-place refused for live source" `Quick
            test_inplace_refused_for_live_source;
          Alcotest.test_case "alias vs conservative copy" `Quick
            test_alias_vs_copy_fallback;
          Alcotest.test_case "random layouts + dropout" `Quick
            test_random_layout_chains;
        ] );
      ( "executor",
        [
          Alcotest.test_case "run_planned: parity, guard, escape hatch"
            `Quick test_run_planned_guard_and_fallback;
          Alcotest.test_case "plan cache keys on regime" `Quick
            test_plan_cache_keys_on_domains;
        ] );
      ( "prepack",
        [
          Alcotest.test_case "bitwise + invalidation" `Quick
            test_prepack_bitwise_and_invalidation;
          Alcotest.test_case "decode on/off bitwise" `Quick
            test_decode_prepack_on_off_bitwise;
          Alcotest.test_case "optimizer update repacks" `Quick
            test_optimizer_update_repacks;
          Alcotest.test_case "interrupt/resume + planned run" `Quick
            test_interrupted_training_then_planned_run;
        ] );
    ]

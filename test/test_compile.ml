(* Tests for the staged compiler pipeline: every pass must preserve the
   uncompiled interpreter's semantics (bitwise, with the documented ulps
   envelope for the streaming attention-backward cone) across randomized
   encoder/decoder geometries, fast and naive backends, serial and
   parallel pools, and with the kernel guard's oracle fallback engaged;
   the plan cache must hit with zero pass re-runs and stay valid across
   in-place weight mutation (prepack invalidation); and the tuned-binding
   pass must change real kernel configurations while degrading gracefully
   on a holed perf database. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bits_equal a b =
  let a = Dense.align a b in
  Array.for_all2
    (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
    (Dense.unsafe_data a) (Dense.unsafe_data b)

let tiny = Transformer.Hparams.tiny
let device = Gpu.Device.v100

let layer_inputs hp seed =
  let prng = Prng.create seed in
  let params = Transformer.Params.init hp in
  let x = Transformer.Params.random_input hp prng in
  let d_y = Transformer.Params.random_cotangent hp prng in
  ("x", x) :: ("d_y", d_y) :: params

let compile_current ?db ?(attention = true) program =
  Compile.Compiled.compile ~device ?db
    ~name_table:Transformer.Encoder.kernel_names
    ~params:Transformer.Encoder.param_names
    (Compile.Regime.current ~attention ())
    program

(* ---------------- verified lowering: the property test --------------- *)

(* [~verify:true] executes the staged program after every pass and raises
   on any container outside the verified envelope — so "compiles without
   Verification_failed" IS the per-pass preservation property. *)
let verify_program ~name hp program =
  let inputs = layer_inputs hp (Int64.of_int (Hashtbl.hash name)) in
  let plan =
    Compile.Compiled.compile ~device
      ~name_table:Transformer.Encoder.kernel_names
      ~params:Transformer.Encoder.param_names ~verify:true
      ~verify_inputs:inputs
      (Compile.Regime.current ())
      program
  in
  check_bool (name ^ ": verified") true plan.Compile.Compiled.verified;
  check_bool
    (name ^ ": every pass traced")
    true
    (List.length plan.Compile.Compiled.trace >= 5);
  plan

(* Randomized geometries: batch/seq/dropout vary, embed/heads stay at the
   tiny preset (embed = heads x proj is a program invariant). *)
let random_hparams prng =
  {
    tiny with
    Transformer.Hparams.batch = 1 + Prng.int prng ~bound:3;
    seq = 2 + Prng.int prng ~bound:5;
    dropout_p = (if Prng.int prng ~bound:2 = 0 then 0.0 else 0.1);
    seed = Int64.of_int (1 + Prng.int prng ~bound:1000);
  }

let test_verified_encoder_decoder () =
  let prng = Prng.create 7L in
  for i = 1 to 3 do
    let hp = random_hparams prng in
    ignore
      (verify_program
         ~name:(Printf.sprintf "encoder #%d" i)
         hp
         (Transformer.Encoder.program hp));
    ignore
      (verify_program
         ~name:(Printf.sprintf "decoder #%d" i)
         hp
         (Transformer.Encoder.program_with ~causal:true ~activation:`Gelu hp))
  done

let test_verified_fast_and_naive () =
  List.iter
    (fun fast ->
      Fastmode.with_mode fast (fun () ->
          ignore
            (verify_program
               ~name:(if fast then "fast backend" else "naive oracle")
               tiny
               (Transformer.Encoder.program tiny))))
    [ true; false ]

let test_verified_parallel () =
  Pool.with_domains 4 (fun () ->
      ignore
        (verify_program ~name:"parallel pool" tiny
           (Transformer.Encoder.program tiny)))

(* Guard fallback engaged: with injected kernel crashes, every fast
   kernel (fused attention included) falls back to its naive-oracle
   replay. The fallback contract is bitwise, so verification must still
   pass while the guard is actively healing the run. *)
let test_verified_guard_fallback () =
  Guard.reset ();
  let faults = Gpu.Faults.make_exec ~seed:3L ~crash_rate:0.5 () in
  Gpu.Faults.with_exec_faults faults (fun () ->
      Guard.with_level Guard.Nan (fun () ->
          ignore
            (verify_program ~name:"guard fallback" tiny
               (Transformer.Encoder.program tiny))));
  Guard.reset ()

(* ---------------- plan cache ---------------- *)

let test_cache_hit_zero_reruns () =
  Compile.Compiled.clear_cache ();
  let plan1 = compile_current (Transformer.Encoder.program tiny) in
  let runs = Compile.Compiled.pass_runs () in
  (* a structurally identical rebuild, not the same value *)
  let plan2 = compile_current (Transformer.Encoder.program tiny) in
  check_bool "second compile is the cached plan" true (plan1 == plan2);
  check_int "cache hit re-runs zero passes" runs (Compile.Compiled.pass_runs ());
  (* a different regime (naive backend) misses: same fingerprint,
     different cache key *)
  let plan3 =
    Fastmode.with_mode false (fun () ->
        compile_current (Transformer.Encoder.program tiny))
  in
  check_bool "regime is part of the key" true (not (plan3 == plan1));
  check_bool "fingerprint is structural" true
    (String.equal plan1.Compile.Compiled.fingerprint
       plan3.Compile.Compiled.fingerprint)

let test_cache_weight_mutation () =
  Compile.Compiled.clear_cache ();
  let hp = { tiny with Transformer.Hparams.dropout_p = 0.0 } in
  let program = Transformer.Encoder.program hp in
  let inputs = layer_inputs hp 23L in
  let plan = compile_current program in
  let y1 =
    Dense.copy (Ops.Op.lookup (Compile.Compiled.execute plan inputs) "y")
  in
  (* mutate a prepacked weight in place, as an optimizer step would *)
  let w1 = List.assoc "w1" inputs in
  let data = Dense.unsafe_data w1 in
  Array.iteri (fun i v -> data.(i) <- v *. 1.5) (Array.copy data);
  Compile.Compiled.invalidate_weights [ w1 ];
  (* the cached plan stays valid (zero re-compiles) and the next execute
     re-registers the pack, reproducing the uncompiled interpreter on the
     mutated weights bitwise *)
  let runs = Compile.Compiled.pass_runs () in
  let plan' = compile_current program in
  check_bool "plan survives the weight update" true (plan' == plan);
  check_int "no re-planning after invalidation" runs
    (Compile.Compiled.pass_runs ());
  let y2 = Ops.Op.lookup (Compile.Compiled.execute plan' inputs) "y" in
  let oracle =
    Ops.Op.lookup
      (Fastmode.with_mode (Fastmode.enabled ()) (fun () ->
           Ops.Program.run program inputs))
      "y"
  in
  check_bool "mutated weights flow through" false (bits_equal y1 y2);
  check_bool "post-mutation execute matches the oracle bitwise" true
    (bits_equal oracle y2)

(* ---------------- tuned binding ---------------- *)

let test_tuned_binding_changes_kernels () =
  let plan = compile_current (Transformer.Encoder.program tiny) in
  let tuned_gemms =
    List.filter_map
      (fun (_, (b : Tuning.t)) -> b.Tuning.gemm)
      plan.Compile.Compiled.bindings
  in
  check_bool "some gemm ops were bound" true (tuned_gemms <> []);
  check_bool "tuned blocks differ from the static default" true
    (List.exists
       (fun (g : Tuning.gemm_blocks) -> g <> Tuning.default_gemm_blocks)
       tuned_gemms);
  (* attention windows get tile bindings too *)
  check_bool "attention window bound" true
    (List.exists
       (fun (_, (b : Tuning.t)) -> b.Tuning.attn <> None)
       plan.Compile.Compiled.bindings)

let test_tuned_binding_holed_perfdb () =
  let fused =
    Substation.Fusion.fuse ~name_table:Transformer.Encoder.kernel_names
      (Transformer.Encoder.program tiny)
  in
  let db = Substation.Perfdb.build ~device fused in
  (* hole a real gemm op: the binding pass must degrade it to the static
     default (no binding) instead of trusting unswept geometry *)
  let victim = "lin1" in
  check_bool "victim op exists in the sweep" true
    (List.mem victim (Substation.Perfdb.op_names db));
  let holed = Substation.Perfdb.punched db [ victim ] in
  check_bool "victim is a hole" true
    (List.mem victim (Substation.Perfdb.holes holed));
  Compile.Compiled.clear_cache ();
  let plan =
    compile_current ~db:holed ~attention:false
      (Transformer.Encoder.program tiny)
  in
  check_bool "holed op kept static" true
    (List.assoc_opt victim plan.Compile.Compiled.bindings = None);
  check_bool "other gemms still bound" true
    (List.exists
       (fun (name, (b : Tuning.t)) ->
         (not (String.equal name victim)) && b.Tuning.gemm <> None)
       plan.Compile.Compiled.bindings);
  (* the trace records the degradation *)
  let note =
    List.fold_left
      (fun acc (s : Compile.Pass.stat) ->
        if String.equal s.Compile.Pass.st_pass "tuned-binding" then
          s.Compile.Pass.st_note
        else acc)
      "" plan.Compile.Compiled.trace
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "trace notes the holed op" true (contains note "holed")

(* ---------------- executor rewiring ---------------- *)

let test_executor_compiled_parity () =
  let inputs = layer_inputs tiny 31L in
  let program = Transformer.Encoder.program tiny in
  let plan =
    {
      Frameworks.Executor.name = "parity";
      program;
      kernels_forward = [];
      kernels_backward = [];
      dispatch_overhead = 0.0;
    }
  in
  List.iter
    (fun fast ->
      let oracle =
        Fastmode.with_mode fast (fun () -> Ops.Program.run program inputs)
      in
      let env = Frameworks.Executor.run_functional ~fast plan inputs in
      List.iter
        (fun c ->
          check_bool
            (Printf.sprintf "run_functional fast=%b %s" fast c)
            true
            (bits_equal (Ops.Op.lookup oracle c) (Ops.Op.lookup env c)))
        [ "y"; "d_x"; "d_wq"; "d_w2" ])
    [ true; false ]

(* ---------------- environment parsing (Substation.Env) --------------- *)

let test_env_parse () =
  let lookup table var = List.assoc_opt var table in
  let ok =
    Substation.Env.parse_with
      (lookup
         [
           ("SUBSTATION_NAIVE", "yes");
           ("SUBSTATION_GUARD", "finite");
           ("SUBSTATION_DOMAINS", "4");
           ("SUBSTATION_ATTN_TILES", "16x64");
         ])
  in
  check_bool "naive parsed" true ok.Substation.Env.naive;
  check_bool "guard parsed" true
    (ok.Substation.Env.guard = Some Substation.Env.Gfinite);
  check_bool "domains parsed" true (ok.Substation.Env.domains = Some 4);
  check_bool "tiles parsed" true
    (ok.Substation.Env.attn_tiles = Some (16, 64));
  check_bool "clean parse has no warnings" true
    (ok.Substation.Env.warnings = []);
  (* the historical silent-typo failure mode: every malformed value is
     recorded, never dropped *)
  let bad =
    Substation.Env.parse_with
      (lookup
         [
           ("SUBSTATION_NAIVE", "ture");
           ("SUBSTATION_GUARD", "nann");
           ("SUBSTATION_DOMAINS", "-2");
           ("SUBSTATION_ATTN_TILES", "32by128");
         ])
  in
  check_bool "typo'd boolean falls back to default" false
    bad.Substation.Env.naive;
  check_bool "typo'd guard falls back to default" true
    (bad.Substation.Env.guard = None);
  check_bool "negative domains rejected" true
    (bad.Substation.Env.domains = None);
  check_bool "malformed tiles rejected" true
    (bad.Substation.Env.attn_tiles = None);
  check_int "four warnings recorded" 4
    (List.length bad.Substation.Env.warnings);
  check_bool "describe mentions nothing spurious" true
    (String.length (Substation.Env.describe ()) > 0)

let () =
  Alcotest.run "compile"
    [
      ( "verify",
        [
          Alcotest.test_case "randomized encoder/decoder, every pass" `Quick
            test_verified_encoder_decoder;
          Alcotest.test_case "fast and naive backends" `Quick
            test_verified_fast_and_naive;
          Alcotest.test_case "parallel pool" `Quick test_verified_parallel;
          Alcotest.test_case "guard fallback engaged" `Quick
            test_verified_guard_fallback;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit re-runs zero passes, keys on regime" `Quick
            test_cache_hit_zero_reruns;
          Alcotest.test_case "weight mutation: plan survives, pack refreshes"
            `Quick test_cache_weight_mutation;
        ] );
      ( "tuning",
        [
          Alcotest.test_case "bindings change real kernel configs" `Quick
            test_tuned_binding_changes_kernels;
          Alcotest.test_case "holed perfdb degrades to static" `Quick
            test_tuned_binding_holed_perfdb;
        ] );
      ( "executor",
        [
          Alcotest.test_case "run_functional == uncompiled interpreter" `Quick
            test_executor_compiled_parity;
        ] );
      ( "env",
        [ Alcotest.test_case "single parse point, loud typos" `Quick test_env_parse ] );
    ]

(* Tests for the resilience layer: determinism of the seeded fault model,
   retrying/outlier-robust perfdb sweeps, checkpoint/resume round-trips,
   degraded-mode selection on holed databases, and the interpreter's
   numerical guards. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let device = Gpu.Device.v100
let tiny = Transformer.Hparams.tiny

let tiny_fused =
  lazy
    (Substation.Fusion.fuse ~name_table:Transformer.Encoder.kernel_names
       (Transformer.Encoder.program tiny))

let tiny_db = lazy (Substation.Perfdb.build ~device (Lazy.force tiny_fused))

let spec ~rate ~sigma = Gpu.Faults.uniform_rate ~seed:7L ~noise_sigma:sigma rate

let contains msg sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
  in
  go 0

(* ---------------- fault model ---------------- *)

let test_inject_deterministic () =
  let s = spec ~rate:0.3 ~sigma:0.1 in
  let draws seed =
    let s = { s with Gpu.Faults.seed } in
    List.init 60 (fun i ->
        Gpu.Faults.inject s ~op:"op"
          ~config:(string_of_int (i mod 7))
          ~attempt:(i / 7) 1.0)
  in
  check_bool "same seed, same outcomes" true (draws 7L = draws 7L);
  check_bool "different seed, different outcomes" true (draws 7L <> draws 8L)

let test_inject_clean_identity () =
  check_bool "clean spec is the identity" true
    (Gpu.Faults.inject Gpu.Faults.none ~op:"x" ~config:"y" ~attempt:0 3.14
    = Gpu.Faults.Measured 3.14)

let test_permanent_stable_under_retry () =
  let s = Gpu.Faults.make ~seed:1L ~permanent_rate:0.5 () in
  let quarantined_at attempt i =
    Gpu.Faults.inject s ~op:"o" ~config:(string_of_int i) ~attempt 1.0
    = Gpu.Faults.Failed Gpu.Faults.Quarantine
  in
  let quarantined =
    List.filter (quarantined_at 0) (List.init 20 (fun i -> i))
  in
  check_bool "some configurations draw a permanent fault" true
    (quarantined <> []);
  List.iter
    (fun i ->
      List.iter
        (fun a ->
          check_bool "quarantine survives retries" true (quarantined_at a i))
        [ 1; 2; 5 ])
    quarantined

let test_backoff_policy () =
  check_bool "first try waits nothing" true (Gpu.Faults.backoff 0 = 0.0);
  check_bool "doubles" true
    (Gpu.Faults.backoff 2 = 2.0 *. Gpu.Faults.backoff 1);
  check_bool "capped" true (Gpu.Faults.backoff ~cap:0.25 30 = 0.25)

(* ---------------- clean equivalence ---------------- *)

let test_clean_build_byte_identical () =
  let program = Lazy.force tiny_fused in
  let a = Lazy.force tiny_db in
  let b = Substation.Perfdb.build ~faults:Gpu.Faults.none ~device program in
  check_string "identical databases"
    (Substation.Perfdb.export_csv a)
    (Substation.Perfdb.export_csv b);
  let sa = Substation.Selector.select a and sb = Substation.Selector.select b in
  check_bool "identical selection" true
    (sa.Substation.Selector.total_time = sb.Substation.Selector.total_time);
  check_bool "no degradation on a clean database" true
    (sa.Substation.Selector.degradation.Substation.Selector.degraded_ops = [])

(* ---------------- faulty sweep ---------------- *)

let test_faulty_sweep_completes_via_retries () =
  let program = Lazy.force tiny_fused in
  let faults = spec ~rate:0.1 ~sigma:0.02 in
  let db = Substation.Perfdb.build ~faults ~device program in
  let st = Substation.Perfdb.stats db in
  check_bool "sweep retried transient failures" true
    (st.Substation.Perfdb.retries > 0);
  check_bool "simulated backoff accrued" true
    (st.Substation.Perfdb.backoff_time > 0.0);
  check_bool "10% transient rate leaves no holes" true
    (Substation.Perfdb.holes db = []);
  let sel = Substation.Selector.select db in
  check_bool "selection on the faulty database is finite" true
    (Float.is_finite sel.Substation.Selector.total_time
    && sel.Substation.Selector.total_time > 0.0);
  let db2 = Substation.Perfdb.build ~faults ~device program in
  check_string "faulty sweep is deterministic"
    (Substation.Perfdb.export_csv db)
    (Substation.Perfdb.export_csv db2)

let test_quarantine_is_recorded () =
  let program = Lazy.force tiny_fused in
  let faults = spec ~rate:0.3 ~sigma:0.0 in
  let db = Substation.Perfdb.build ~faults ~device program in
  let q = Substation.Perfdb.quarantine db in
  check_bool "permanent faults quarantined" true (q <> []);
  check_int "stats agree with the record"
    (List.length q)
    (Substation.Perfdb.stats db).Substation.Perfdb.quarantined_configs;
  List.iter
    (fun (r : Substation.Perfdb.quarantined) ->
      check_bool "quarantine names the op" true
        (List.mem r.Substation.Perfdb.q_op (Substation.Perfdb.op_names db)))
    q

(* ---------------- checkpoint / resume ---------------- *)

let test_checkpoint_resume_equal () =
  let program = Lazy.force tiny_fused in
  let faults = spec ~rate:0.08 ~sigma:0.03 in
  let path = Filename.temp_file "perfdb" ".ckpt" in
  Sys.remove path;
  (try
     ignore
       (Substation.Perfdb.build ~faults ~device ~checkpoint:path
          ~interrupt_after:2 program);
     Alcotest.fail "expected Perfdb.Interrupted"
   with Substation.Perfdb.Interrupted p ->
     check_string "Interrupted carries the checkpoint path" path p);
  check_bool "checkpoint written before the interrupt" true
    (Sys.file_exists path);
  let resumed =
    Substation.Perfdb.build ~faults ~device ~checkpoint:path program
  in
  check_int "two ops restored from the checkpoint" 2
    (Substation.Perfdb.stats resumed).Substation.Perfdb.resumed_ops;
  check_bool "checkpoint deleted once the sweep completes" false
    (Sys.file_exists path);
  let direct = Substation.Perfdb.build ~faults ~device program in
  check_string "interrupt + resume equals the uninterrupted sweep"
    (Substation.Perfdb.export_csv direct)
    (Substation.Perfdb.export_csv resumed)

let test_checkpoint_rejects_mismatched_sweep () =
  let program = Lazy.force tiny_fused in
  let faults = spec ~rate:0.08 ~sigma:0.03 in
  let path = Filename.temp_file "perfdb" ".ckpt" in
  Sys.remove path;
  (try
     ignore
       (Substation.Perfdb.build ~faults ~device ~checkpoint:path
          ~interrupt_after:1 program)
   with Substation.Perfdb.Interrupted _ -> ());
  (try
     ignore
       (Substation.Perfdb.build ~faults ~device:Gpu.Device.a100
          ~checkpoint:path program);
     Alcotest.fail "expected a fingerprint mismatch"
   with Invalid_argument msg ->
     check_bool "mismatch message says what to do" true
       (contains msg "different sweep"));
  Sys.remove path

(* ---------------- degraded-mode selection ---------------- *)

let test_degraded_selection_on_punched_db () =
  let db = Lazy.force tiny_db in
  let clean = Substation.Selector.select db in
  let names =
    List.filteri (fun i _ -> i < 2) (Substation.Perfdb.op_names db)
  in
  let holed = Substation.Perfdb.punched db names in
  check_bool "punched ops are holes" true
    (Substation.Perfdb.holes holed = names);
  let sel = Substation.Selector.select holed in
  let d = sel.Substation.Selector.degradation in
  check_bool "degradation report is non-empty" true
    (d.Substation.Selector.degraded_ops <> []);
  List.iter
    (fun name ->
      check_bool (name ^ " reported degraded") true
        (List.exists
           (fun (o : Substation.Selector.degraded_op) ->
             o.Substation.Selector.d_op = name)
           d.Substation.Selector.degraded_ops))
    names;
  check_int "forward op count preserved"
    (List.length clean.Substation.Selector.forward)
    (List.length sel.Substation.Selector.forward);
  check_int "backward op count preserved"
    (List.length clean.Substation.Selector.backward)
    (List.length sel.Substation.Selector.backward);
  check_bool "penalty is finite and non-negative" true
    (Float.is_finite d.Substation.Selector.time_penalty
    && d.Substation.Selector.time_penalty >= 0.0);
  check_bool "degraded selection is not faster than clean" true
    (sel.Substation.Selector.total_time
    >= clean.Substation.Selector.total_time -. 1e-12);
  let g = Substation.Selector.greedy holed in
  check_bool "greedy also degrades instead of raising" true
    (g.Substation.Selector.degradation.Substation.Selector.degraded_ops <> [])

let test_error_messages_carry_remediation () =
  let db = Lazy.force tiny_db in
  (try
     ignore (Substation.Perfdb.entries db "no_such_op");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument msg ->
     check_bool "entries names the op and the remedy" true
       (contains msg "no_such_op" && contains msg "known operators"));
  let first = List.hd (Substation.Perfdb.op_names db) in
  let holed = Substation.Perfdb.punched db [ first ] in
  try
    ignore (Substation.Perfdb.best holed first);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument msg ->
    check_bool "best on a hole points at the degraded path" true
      (contains msg first && contains msg "best_opt")

(* ---------------- interpreter numerical guards ---------------- *)

let test_numerical_guard_names_offender () =
  let plan =
    Frameworks.Pytorch_sim.plan ~device
      ~workload:Frameworks.Executor.Encoder_layer tiny
  in
  let prng = Prng.create 5L in
  let params = Transformer.Params.init tiny in
  let x = Transformer.Params.random_input tiny prng in
  let d_y = Transformer.Params.random_cotangent tiny prng in
  (Dense.unsafe_data x).(0) <- Float.nan;
  let inputs = ("x", x) :: ("d_y", d_y) :: params in
  (try
     ignore (Frameworks.Executor.run_functional plan inputs);
     Alcotest.fail "expected Numerical_fault"
   with Frameworks.Executor.Numerical_fault { fault_op; container; value } ->
     check_bool "names the offending op" true (fault_op <> "");
     check_bool "names the container" true (container <> "");
     check_string "classifies the value" "NaN" value);
  (* the guard can be bypassed explicitly *)
  ignore
    (Frameworks.Executor.run_functional ~check:Frameworks.Executor.No_check
       plan inputs)

let test_clean_run_passes_guard () =
  let plan =
    Frameworks.Pytorch_sim.plan ~device
      ~workload:Frameworks.Executor.Encoder_layer tiny
  in
  let prng = Prng.create 6L in
  let params = Transformer.Params.init tiny in
  let inputs =
    ("x", Transformer.Params.random_input tiny prng)
    :: ("d_y", Transformer.Params.random_cotangent tiny prng)
    :: params
  in
  let env = Frameworks.Executor.run_functional plan inputs in
  check_bool "produced the output" true (Ops.Op.lookup env "y" <> Dense.scalar 0.)

let () =
  Alcotest.run "faults"
    [
      ( "fault model",
        [
          Alcotest.test_case "deterministic in the seed" `Quick
            test_inject_deterministic;
          Alcotest.test_case "clean spec is the identity" `Quick
            test_inject_clean_identity;
          Alcotest.test_case "permanent faults survive retries" `Quick
            test_permanent_stable_under_retry;
          Alcotest.test_case "backoff policy" `Quick test_backoff_policy;
        ] );
      ( "perfdb resilience",
        [
          Alcotest.test_case "clean build is byte-identical" `Quick
            test_clean_build_byte_identical;
          Alcotest.test_case "faulty sweep completes via retries" `Quick
            test_faulty_sweep_completes_via_retries;
          Alcotest.test_case "quarantine recorded" `Quick
            test_quarantine_is_recorded;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "interrupt/resume equals uninterrupted" `Quick
            test_checkpoint_resume_equal;
          Alcotest.test_case "mismatched checkpoint rejected" `Quick
            test_checkpoint_rejects_mismatched_sweep;
        ] );
      ( "degraded selection",
        [
          Alcotest.test_case "selection on punched holes" `Quick
            test_degraded_selection_on_punched_db;
          Alcotest.test_case "error messages carry remediation" `Quick
            test_error_messages_carry_remediation;
        ] );
      ( "numerical guards",
        [
          Alcotest.test_case "NaN input names the offender" `Quick
            test_numerical_guard_names_offender;
          Alcotest.test_case "clean run passes" `Quick
            test_clean_run_passes_guard;
        ] );
    ]

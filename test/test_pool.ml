(* Tests for the multicore worker pool and its users: exact index coverage
   under adversarial chunk counts, deterministic ascending-order reduction
   merges, exception propagation, nested-region serialization, and — the
   core contract — bitwise identity of the parallel GEMM / einsum / fused
   kernels and of parallel autotuning sweeps with their serial runs. *)

let q = QCheck_alcotest.to_alcotest
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let shuffle_list prng xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Prng.int prng ~bound:(i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

(* ---------------- parallel_for semantics ---------------- *)

(* Record the chunks a parallel_for hands out and assert they partition
   [start, finish) exactly: sorted by lo, no gaps, no overlaps. *)
let record_chunks ?chunks ~start ~finish () =
  let m = Mutex.create () in
  let seen = ref [] in
  Pool.parallel_for ?chunks ~start ~finish (fun lo hi ->
      Mutex.lock m;
      seen := (lo, hi) :: !seen;
      Mutex.unlock m);
  List.sort compare !seen

let assert_partition ~start ~finish ranges =
  let cursor = ref start in
  List.iter
    (fun (lo, hi) ->
      check_int "chunk starts where the previous ended" !cursor lo;
      check_bool "chunk is non-empty" true (hi > lo);
      cursor := hi)
    ranges;
  check_int "chunks cover the whole range" finish !cursor

let test_coverage () =
  Pool.with_domains 4 (fun () ->
      List.iter
        (fun (start, finish) ->
          List.iter
            (fun chunks ->
              let ranges = record_chunks ~chunks ~start ~finish () in
              assert_partition ~start ~finish ranges)
            [ 1; 2; 3; 7; 16; 64; 1000 ];
          (* Default chunk count too. *)
          assert_partition ~start ~finish (record_chunks ~start ~finish ()))
        [ (0, 1); (0, 17); (5, 23); (0, 1000) ];
      (* Empty ranges dispatch nothing. *)
      check_bool "empty range runs no chunks" true
        (record_chunks ~chunks:7 ~start:3 ~finish:3 () = []))

let test_reduce_order () =
  Pool.with_domains 4 (fun () ->
      (* Order-sensitive combine: concatenation exposes any merge-order
         nondeterminism. The result must be the ascending chunk ranges. *)
      let s =
        Pool.parallel_for_reduce ~chunks:7 ~start:0 ~finish:23 ~init:""
          ~combine:( ^ ) (fun lo hi -> Printf.sprintf "[%d,%d)" lo hi)
      in
      let expected =
        List.fold_left
          (fun acc (lo, hi) -> acc ^ Printf.sprintf "[%d,%d)" lo hi)
          ""
          (Pool.with_domains 4 (fun () ->
               record_chunks ~chunks:7 ~start:0 ~finish:23 ()))
      in
      check_string "reduction merges in ascending chunk order" expected s;
      (* Exact integer sum agrees with the serial closed form. *)
      let sum =
        Pool.parallel_for_reduce ~chunks:16 ~start:0 ~finish:1000 ~init:0
          ~combine:( + ) (fun lo hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do
              s := !s + i
            done;
            !s)
      in
      check_int "range sum" (999 * 1000 / 2) sum)

exception Boom

let test_exception_propagation () =
  Pool.with_domains 4 (fun () ->
      let raised =
        try
          Pool.parallel_for ~chunks:8 ~start:0 ~finish:64 (fun lo hi ->
              if lo <= 13 && 13 < hi then raise Boom);
          false
        with Boom -> true
      in
      check_bool "chunk exception re-raised on the caller" true raised;
      (* The pool survives a failed job. *)
      assert_partition ~start:0 ~finish:17
        (record_chunks ~chunks:4 ~start:0 ~finish:17 ()))

let test_nested_regions_serialize () =
  Pool.with_domains 4 (fun () ->
      let outer_in_worker = ref false and inner_total = Atomic.make 0 in
      Pool.parallel_for ~chunks:4 ~start:0 ~finish:8 (fun lo hi ->
          if Pool.running_in_worker () then outer_in_worker := true;
          (* A nested region must run inline, still covering its range. *)
          Pool.parallel_for ~chunks:4 ~start:0 ~finish:(hi - lo) (fun l h ->
              ignore (Atomic.fetch_and_add inner_total (h - l))));
      check_bool "chunk bodies observe running_in_worker" true
        !outer_in_worker;
      check_int "nested regions cover their ranges inline" 8
        (Atomic.get inner_total));
  check_bool "outside any region, not in a worker" false
    (Pool.running_in_worker ())

(* ---------------- bitwise identity: GEMM ---------------- *)

let gemm_at_domains d ~m ~n ~k a b =
  let c = Array.make (m * n) 0.0 in
  Pool.with_domains d (fun () -> Gemm.gemm ~m ~n ~k a b c);
  c

let prop_gemm_parallel_bitwise =
  QCheck.Test.make
    ~name:"parallel gemm bitwise-equal to serial over random shapes"
    ~count:30
    QCheck.(triple (int_range 2 40) (int_range 1 40) (int_range 1 40))
    (fun (m, n, k) ->
      let prng = Prng.create (Int64.of_int ((m * 1763) + (n * 43) + k)) in
      let a =
        Dense.unsafe_data
          (Dense.rand prng [ ("m", m); ("k", k) ] ~lo:(-1.0) ~hi:1.0)
      in
      let b =
        Dense.unsafe_data
          (Dense.rand prng [ ("k", k); ("n", n) ] ~lo:(-1.0) ~hi:1.0)
      in
      let serial = gemm_at_domains 1 ~m ~n ~k a b in
      let par = gemm_at_domains 4 ~m ~n ~k a b in
      let par3 = gemm_at_domains 3 ~m ~n ~k a b in
      Array.for_all2 Float.equal serial par
      && Array.for_all2 Float.equal serial par3)

let test_gemm_offsets_parallel_bitwise () =
  (* Offsets into larger buffers: the row sharding must respect them. *)
  let m = 24 and n = 40 and k = 24 in
  let a_off = 5 and b_off = 3 and c_off = 7 in
  let prng = Prng.create 99L in
  let arr len =
    Dense.unsafe_data (Dense.rand prng [ ("x", len) ] ~lo:(-1.0) ~hi:1.0)
  in
  let a = arr ((m * k) + a_off) and b = arr ((k * n) + b_off) in
  let run d =
    let c = Array.make ((m * n) + c_off) 1.5 in
    Pool.with_domains d (fun () ->
        Gemm.gemm ~a_off ~b_off ~c_off ~m ~n ~k a b c);
    c
  in
  check_bool "offset gemm bitwise across domain counts" true
    (Array.for_all2 Float.equal (run 1) (run 4))

(* ---------------- bitwise identity: einsum ---------------- *)

let test_einsum_parallel_bitwise () =
  (* Batched matmul big enough to engage the batch-group sharding
     (4 * 24^3 >> threshold), with permuted operand storage. *)
  let b = 4 and m = 24 and n = 24 and k = 24 in
  let prng = Prng.create 31L in
  let a_t =
    Dense.rand prng [ ("b", b); ("m", m); ("k", k) ] ~lo:(-1.0) ~hi:1.0
  in
  let b_t =
    Dense.rand prng [ ("b", b); ("k", k); ("n", n) ] ~lo:(-1.0) ~hi:1.0
  in
  let a_t = Dense.permute a_t (shuffle_list prng (Dense.axes a_t)) in
  let b_t = Dense.permute b_t (shuffle_list prng (Dense.axes b_t)) in
  let run d =
    Pool.with_domains d (fun () ->
        Einsum.contract ~fast:true [ a_t; b_t ] ~out:[ "b"; "m"; "n" ])
  in
  let serial = run 1 in
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "parallel einsum at %d domains bitwise" d)
        true
        (Dense.max_abs_diff serial (run d) = 0.0))
    [ 2; 3; 4 ]

let test_einsum_mha_parallel_bitwise () =
  (* An MHA-shaped contraction (the paper's QK^T) at sizes where several
     batch dims fold into the sharded group. *)
  let sizes = [ ("p", 16); ("h", 4); ("b", 2); ("j", 16); ("k", 16) ] in
  let prng = Prng.create 47L in
  let mk axes =
    Dense.rand prng (List.map (fun a -> (a, List.assoc a sizes)) axes)
      ~lo:(-1.0) ~hi:1.0
  in
  let q_t = mk [ "p"; "h"; "b"; "k" ] and k_t = mk [ "p"; "h"; "b"; "j" ] in
  let run d =
    Pool.with_domains d (fun () ->
        Einsum.contract ~fast:true [ q_t; k_t ] ~out:[ "h"; "b"; "j"; "k" ])
  in
  check_bool "parallel MHA contraction bitwise" true
    (Dense.max_abs_diff (run 1) (run 4) = 0.0)

(* ---------------- bitwise identity: fused programs ---------------- *)

(* Run the fused encoder (forward + backward, dropout, softmax, layernorm)
   at two domain counts and require every container bitwise identical.
   Sizes chosen so the row-sharded kernels and element-wise chains all
   clear their parallel thresholds. *)
let test_fused_program_parallel_bitwise () =
  let hp =
    {
      Transformer.Hparams.tiny with
      batch = 2;
      seq = 32;
      embed = 64;
      heads = 4;
      proj = 16;
      ff = 128;
      dropout_p = 0.1;
    }
  in
  let program = Transformer.Encoder.program hp in
  let fused =
    Substation.Fusion.fuse ~name_table:Transformer.Encoder.kernel_names
      program
  in
  let prng = Prng.create 11L in
  let params = Transformer.Params.init hp in
  let x = Transformer.Params.random_input hp prng in
  let d_y = Transformer.Params.random_cotangent hp prng in
  let inputs = ("x", x) :: ("d_y", d_y) :: params in
  let run d =
    Pool.with_domains d (fun () ->
        Fastmode.with_mode true (fun () -> Ops.Program.run fused inputs))
  in
  let env_serial = run 1 and env_par = run 4 in
  check_int "same containers materialized" (Hashtbl.length env_serial)
    (Hashtbl.length env_par);
  Hashtbl.iter
    (fun container t_serial ->
      match Hashtbl.find_opt env_par container with
      | None -> Alcotest.failf "container %s missing in parallel run" container
      | Some t_par ->
          let d = Dense.max_abs_diff t_serial t_par in
          if d <> 0.0 then
            Alcotest.failf "container %s differs by %g (not bitwise)"
              container d)
    env_serial

(* ---------------- bitwise identity: autotuning sweeps ---------------- *)

let device = Gpu.Device.v100

let tiny_fused =
  lazy
    (Substation.Fusion.fuse ~name_table:Transformer.Encoder.kernel_names
       (Transformer.Encoder.program Transformer.Hparams.tiny))

let faults = Gpu.Faults.uniform_rate ~seed:7L ~noise_sigma:0.05 0.1

let stats_equal (a : Substation.Perfdb.sweep_stats)
    (b : Substation.Perfdb.sweep_stats) =
  a.measurements = b.measurements
  && a.retries = b.retries
  && a.transient_failures = b.transient_failures
  && a.quarantined_configs = b.quarantined_configs
  && Int64.equal
       (Int64.bits_of_float a.backoff_time)
       (Int64.bits_of_float b.backoff_time)
  && a.resumed_ops = b.resumed_ops

let db_identical name a b =
  check_string (name ^ ": entry tables identical (medians included)")
    (Substation.Perfdb.export_csv a)
    (Substation.Perfdb.export_csv b);
  check_bool (name ^ ": quarantine sets identical") true
    (Substation.Perfdb.quarantine a = Substation.Perfdb.quarantine b);
  check_bool (name ^ ": sweep stats identical (bitwise backoff)") true
    (stats_equal (Substation.Perfdb.stats a) (Substation.Perfdb.stats b))

let test_perfdb_parallel_identity () =
  let program = Lazy.force tiny_fused in
  let build d =
    Pool.with_domains d (fun () ->
        Substation.Perfdb.build ~faults ~device program)
  in
  db_identical "faulty sweep" (build 1) (build 4)

let test_perfdb_checkpoint_interop () =
  let program = Lazy.force tiny_fused in
  check_string "serial and parallel sweeps share the checkpoint identity"
    (Pool.with_domains 1 (fun () ->
         Substation.Perfdb.fingerprint ~faults ~device program))
    (Pool.with_domains 4 (fun () ->
         Substation.Perfdb.fingerprint ~faults ~device program));
  (* Interrupt a serial sweep after two ops, then resume once serially and
     once in parallel from identical checkpoints: the finished databases
     must be indistinguishable. *)
  let interrupted () =
    let path = Filename.temp_file "pool_ckpt" ".bin" in
    (* temp_file creates an empty file; build must see a fresh path. *)
    Sys.remove path;
    (try
       ignore
         (Pool.with_domains 1 (fun () ->
              Substation.Perfdb.build ~faults ~checkpoint:path
                ~interrupt_after:2 ~device program));
       Alcotest.fail "sweep was not interrupted"
     with Substation.Perfdb.Interrupted _ -> ());
    path
  in
  let resume d path =
    let db =
      Pool.with_domains d (fun () ->
          Substation.Perfdb.build ~faults ~checkpoint:path ~device program)
    in
    (* build deletes its checkpoint on completion; clean up defensively. *)
    (try Sys.remove path with Sys_error _ -> ());
    db
  in
  let p1 = interrupted () and p2 = interrupted () in
  db_identical "interrupted-then-resumed sweep" (resume 1 p1) (resume 4 p2)

let () =
  Alcotest.run "pool"
    [
      ( "parallel_for",
        [
          Alcotest.test_case "chunks partition the range exactly" `Quick
            test_coverage;
          Alcotest.test_case "reduce merges in ascending order" `Quick
            test_reduce_order;
          Alcotest.test_case "exceptions propagate, pool survives" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested regions run inline" `Quick
            test_nested_regions_serialize;
        ] );
      ( "bitwise kernels",
        [
          q prop_gemm_parallel_bitwise;
          Alcotest.test_case "gemm with offsets" `Quick
            test_gemm_offsets_parallel_bitwise;
          Alcotest.test_case "batched-matmul einsum" `Quick
            test_einsum_parallel_bitwise;
          Alcotest.test_case "MHA contraction" `Quick
            test_einsum_mha_parallel_bitwise;
          Alcotest.test_case "fused encoder program" `Quick
            test_fused_program_parallel_bitwise;
        ] );
      ( "autotuning sweeps",
        [
          Alcotest.test_case "parallel sweep database identical" `Slow
            test_perfdb_parallel_identity;
          Alcotest.test_case "checkpoint interop serial<->parallel" `Slow
            test_perfdb_checkpoint_interop;
        ] );
    ]

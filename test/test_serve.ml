(* Tests for the inference serving stack: KV-cached incremental decoding
   bitwise-equal to the full-recompute oracle (straight and under permuted
   parameter layouts, single and ragged batches), scheduler determinism
   under a fixed trace seed, deadline shedding, continuous-batching
   retirement, admission control, and metrics histogram counts. *)

let q = QCheck_alcotest.to_alcotest
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let shuffle_list prng xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Prng.int prng ~bound:(i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

module M = Transformer.Model
module H = Transformer.Hparams

let hp0 = { (H.with_dropout H.tiny 0.0) with H.seed = 11L }

let vocab = 13

(* ---------------- KV-cached decode vs full-recompute oracle --------- *)

let check_column ~what got want =
  check_int (what ^ " vocab size") (Array.length want) (Array.length got);
  Array.iteri
    (fun vi w ->
      check_bool
        (Printf.sprintf "%s logit %d bitwise" what vi)
        true
        (Float.equal got.(vi) w))
    want

let test_decode_bitwise_steps () =
  let m = M.create ~n_layers:2 ~vocab hp0 in
  let prng = Prng.create 42L in
  let l = 9 in
  let prompt = Array.init l (fun _ -> Prng.int prng ~bound:vocab) in
  let s = M.new_session m in
  for t = 0 to l - 1 do
    let logits =
      M.decode_batch m [| s |] ~tokens:[| prompt.(t) |]
    in
    check_int "session length" (t + 1) (M.session_len s);
    check_column
      ~what:(Printf.sprintf "step %d" t)
      (M.logits_column logits ~b:0)
      (M.decode_oracle m ~prompt:(Array.sub prompt 0 (t + 1)))
  done

(* Ragged batch: sessions of different lengths advance together; each
   slot's logits must equal its own full-prefix oracle. *)
let test_decode_bitwise_ragged () =
  let m = M.create ~n_layers:2 ~vocab hp0 in
  let prng = Prng.create 7L in
  let prompts =
    [| Array.init 6 (fun _ -> Prng.int prng ~bound:vocab);
       Array.init 3 (fun _ -> Prng.int prng ~bound:vocab);
       Array.init 5 (fun _ -> Prng.int prng ~bound:vocab) |]
  in
  let sessions =
    Array.map (fun _ -> M.new_session m) prompts
  in
  (* stagger: advance slot 0 alone for 3 tokens, then the full batch *)
  for t = 0 to 2 do
    ignore
      (M.decode_batch m [| sessions.(0) |]
         ~tokens:[| prompts.(0).(t) |])
  done;
  for t = 0 to 2 do
    let logits =
      M.decode_batch m sessions
        ~tokens:
          [| prompts.(0).(3 + t); prompts.(1).(t); prompts.(2).(t) |]
    in
    Array.iteri
      (fun b prompt ->
        let len = M.session_len sessions.(b) in
        check_column
          ~what:(Printf.sprintf "ragged step %d slot %d" t b)
          (M.logits_column logits ~b)
          (M.decode_oracle m ~prompt:(Array.sub prompt 0 len)))
      prompts
  done

(* Random storage layouts: permuting every parameter's storage order must
   leave both paths identical (pure data movement). *)
let prop_decode_bitwise_layouts =
  QCheck.Test.make ~name:"kv-cached decode bitwise under permuted layouts"
    ~count:6
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prng = Prng.create (Int64.of_int (seed + 1)) in
      let m0 = M.create ~n_layers:2 ~vocab hp0 in
      let permute t = Dense.permute t (shuffle_list prng (Dense.axes t)) in
      let m =
        {
          m0 with
          M.embedding = permute m0.M.embedding;
          layer_params =
            Array.map
              (List.map (fun (n, p) -> (n, permute p)))
              m0.M.layer_params;
        }
      in
      let l = 5 in
      let prompt = Array.init l (fun _ -> Prng.int prng ~bound:vocab) in
      let s = M.new_session m in
      let ok = ref true in
      for t = 0 to l - 1 do
        let logits =
          M.decode_batch m [| s |] ~tokens:[| prompt.(t) |]
        in
        let got = M.logits_column logits ~b:0 in
        let want =
          M.decode_oracle m
            ~prompt:(Array.sub prompt 0 (t + 1))
        in
        Array.iteri
          (fun vi w -> if not (Float.equal got.(vi) w) then ok := false)
          want
      done;
      !ok)

(* Greedy self-feeding generation agrees between cached and oracle paths. *)
let test_generate_matches_oracle () =
  let m = M.create ~n_layers:2 ~vocab hp0 in
  let prompt = [| 3; 1; 4 |] in
  let s = M.new_session m in
  let cached = ref [] in
  let tok = ref prompt.(0) in
  let fed = ref [ prompt.(0) ] in
  for t = 0 to 7 do
    let logits = M.decode_batch m [| s |] ~tokens:[| !tok |] in
    let next =
      M.argmax (M.logits_column logits ~b:0)
    in
    let feed = if t + 1 < Array.length prompt then prompt.(t + 1) else next in
    if t + 1 >= Array.length prompt then cached := next :: !cached;
    tok := feed;
    if t < 7 then fed := feed :: !fed
  done;
  (* oracle: same teacher-forced/greedy schedule via full recompute *)
  let oracle = ref [] in
  let prefix = ref [ prompt.(0) ] in
  for t = 0 to 7 do
    let col =
      M.decode_oracle m
        ~prompt:(Array.of_list (List.rev !prefix))
    in
    let next = M.argmax col in
    let feed = if t + 1 < Array.length prompt then prompt.(t + 1) else next in
    if t + 1 >= Array.length prompt then oracle := next :: !oracle;
    if t < 7 then prefix := feed :: !prefix
  done;
  check_bool "greedy generations equal" true (!cached = !oracle)

(* ---------------- scheduler: correctness of served generations ------- *)

(* The scheduler's output tokens are exactly the oracle's greedy
   generation for each request, regardless of batching. *)
let test_scheduler_serves_oracle_generations () =
  let m = M.create ~n_layers:2 ~vocab hp0 in
  let clock = Serve.Clock.sim () in
  let sched =
    Serve.Scheduler.create
      ~policy:
        {
          Serve.Scheduler.default_policy with
          Serve.Scheduler.max_batch = 3;
          queue_capacity = 8;
        }
      ~clock m
  in
  let prompts = [ [| 3; 1; 4 |]; [| 2 |]; [| 5; 5 |] ] in
  let gens = [ 4; 6; 2 ] in
  List.iter2
    (fun prompt max_new ->
      match Serve.Scheduler.submit sched ~prompt ~max_new () with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "unexpected rejection")
    prompts gens;
  Serve.Scheduler.drain sched;
  let completions =
    List.filter_map
      (function Serve.Scheduler.Completed c -> Some c | _ -> None)
      (Serve.Scheduler.events sched)
  in
  check_int "all requests completed" 3 (List.length completions);
  List.iteri
    (fun i (prompt, max_new) ->
      let c =
        List.find (fun c -> c.Serve.Scheduler.c_id = i) completions
      in
      (* oracle greedy generation by full recompute *)
      let prefix = ref (Array.to_list prompt) in
      let expect =
        Array.init max_new (fun _ ->
            let col = M.decode_oracle m ~prompt:(Array.of_list !prefix) in
            let tok = M.argmax col in
            prefix := !prefix @ [ tok ];
            tok)
      in
      check_bool
        (Printf.sprintf "request %d tokens match oracle" i)
        true
        (c.Serve.Scheduler.c_tokens = expect))
    (List.combine prompts gens)

(* ---------------- scheduler: determinism under a fixed trace seed ---- *)

let run_trace ?(policy = Serve.Scheduler.default_policy) ?step_cost spec =
  let m = M.create ~n_layers:2 ~vocab:spec.Serve.Loadgen.vocab hp0 in
  let clock = Serve.Clock.sim () in
  let sched = Serve.Scheduler.create ~policy ?step_cost ~clock m in
  Serve.Loadgen.run sched clock (Serve.Loadgen.trace spec);
  sched

let counters sched =
  let mt = Serve.Scheduler.metrics sched in
  ( mt.Serve.Metrics.completed,
    mt.Serve.Metrics.rejected,
    mt.Serve.Metrics.shed,
    mt.Serve.Metrics.tokens_out,
    mt.Serve.Metrics.steps,
    Serve.Metrics.quantile mt.Serve.Metrics.latency 0.95 )

let test_scheduler_determinism () =
  let spec =
    {
      Serve.Loadgen.default_spec with
      Serve.Loadgen.n = 20;
      pattern = Serve.Loadgen.Poisson { rate = 400.0 };
      vocab;
      seed = 99L;
      max_new = 3;
    }
  in
  let a = run_trace spec and b = run_trace spec in
  check_bool "event streams identical" true
    (Serve.Scheduler.events a = Serve.Scheduler.events b);
  check_bool "counters identical" true (counters a = counters b);
  (* a different seed shifts arrival times, so latencies differ *)
  let c = run_trace { spec with Serve.Loadgen.seed = 100L } in
  check_bool "different seed changes the run" true
    (Serve.Scheduler.events a <> Serve.Scheduler.events c)

(* ---------------- deadlines: shedding and zero-shed at low load ------ *)

let test_low_load_no_sheds () =
  let spec =
    {
      Serve.Loadgen.default_spec with
      Serve.Loadgen.n = 10;
      pattern = Serve.Loadgen.Uniform { gap = 0.01 };
      vocab;
      seed = 5L;
      max_new = 2;
      deadline = Some 0.5;
    }
  in
  let sched = run_trace spec in
  let mt = Serve.Scheduler.metrics sched in
  check_int "no sheds at low load" 0 mt.Serve.Metrics.shed;
  check_int "no rejections at low load" 0 mt.Serve.Metrics.rejected;
  check_int "all completed" 10 mt.Serve.Metrics.completed;
  check_int "no late completions" 0 mt.Serve.Metrics.late

let test_deadline_shedding_and_degradation () =
  (* service so slow every deadline blows: everything sheds, none
     completes, and the batch cap degrades *)
  let spec =
    {
      Serve.Loadgen.default_spec with
      Serve.Loadgen.n = 12;
      pattern = Serve.Loadgen.Bursty { burst = 4; period = 0.005 };
      vocab;
      seed = 3L;
      max_new = 4;
      deadline = Some 0.02;
    }
  in
  let sched =
    run_trace spec ~step_cost:(fun ~batch:_ ~max_len:_ -> 0.05)
      ~policy:
        {
          Serve.Scheduler.default_policy with
          Serve.Scheduler.max_batch = 4;
          queue_capacity = 16;
          degrade_after = 1;
        }
  in
  let mt = Serve.Scheduler.metrics sched in
  check_bool "sheds happened" true (mt.Serve.Metrics.shed > 0);
  check_bool "batch cap degraded" true (mt.Serve.Metrics.degraded > 0);
  check_bool "floor below configured max" true
    (mt.Serve.Metrics.batch_floor < 4);
  let sheds =
    List.filter
      (function
        | Serve.Scheduler.Rejected (_, Serve.Scheduler.Shed_deadline _) ->
            true
        | _ -> false)
      (Serve.Scheduler.events sched)
  in
  check_int "structured shed events match counter" mt.Serve.Metrics.shed
    (List.length sheds)

let test_admission_backpressure () =
  (* 10 simultaneous arrivals into a 2-deep queue: 8 refuse immediately *)
  let spec =
    {
      Serve.Loadgen.default_spec with
      Serve.Loadgen.n = 10;
      pattern = Serve.Loadgen.Bursty { burst = 10; period = 1.0 };
      vocab;
      seed = 8L;
      max_new = 1;
    }
  in
  let sched =
    run_trace spec
      ~policy:
        {
          Serve.Scheduler.default_policy with
          Serve.Scheduler.max_batch = 2;
          queue_capacity = 2;
        }
  in
  let mt = Serve.Scheduler.metrics sched in
  check_int "rejected overflow" 8 mt.Serve.Metrics.rejected;
  check_int "accepted complete" 2 mt.Serve.Metrics.completed;
  let full =
    List.filter
      (function
        | Serve.Scheduler.Rejected (_, Serve.Scheduler.Queue_full _) -> true
        | _ -> false)
      (Serve.Scheduler.events sched)
  in
  check_int "queue-full events" 8 (List.length full)

(* ---------------- continuous batching retirement --------------------- *)

let test_continuous_batching_retirement () =
  let m = M.create ~n_layers:2 ~vocab hp0 in
  let clock = Serve.Clock.sim () in
  let sched =
    Serve.Scheduler.create
      ~policy:
        {
          Serve.Scheduler.default_policy with
          Serve.Scheduler.max_batch = 3;
          queue_capacity = 8;
        }
      ~clock m
  in
  List.iter
    (fun (prompt, max_new) ->
      ignore (Serve.Scheduler.submit sched ~prompt ~max_new ()))
    [ ([| 1 |], 1); ([| 2 |], 3); ([| 3 |], 5) ];
  (* tick by hand and watch the batch shrink as sequences finish; the
     per-step participant count is the occupancy_sum delta across ticks *)
  let mt = Serve.Scheduler.metrics sched in
  let occupancies = ref [] in
  let prev_occ = ref 0 in
  let rec go () =
    match Serve.Scheduler.tick sched with
    | `Stepped ->
        let occ = mt.Serve.Metrics.occupancy_sum in
        occupancies := (occ - !prev_occ) :: !occupancies;
        prev_occ := occ;
        go ()
    | `Idle_until ts ->
        Serve.Clock.advance_to clock ts;
        go ()
    | `Drained -> ()
  in
  go ();
  check_int "all complete" 3 mt.Serve.Metrics.completed;
  check_int "tokens generated" (1 + 3 + 5) mt.Serve.Metrics.tokens_out;
  (* the final steps must have run with only the longest request left *)
  check_int "last step ran solo" 1 (List.hd !occupancies);
  check_bool "batch actually shrank" true
    (List.exists (fun n -> n = 3) !occupancies)

(* ---------------- metrics histograms --------------------------------- *)

let test_metrics_histogram () =
  let h = Serve.Metrics.hist () in
  for i = 1 to 100 do
    Serve.Metrics.observe h (float_of_int i /. 1000.0)
  done;
  check_int "count" 100 (Serve.Metrics.hist_count h);
  let p50 = Serve.Metrics.quantile h 0.50
  and p95 = Serve.Metrics.quantile h 0.95
  and p99 = Serve.Metrics.quantile h 0.99 in
  check_bool "p50 <= p95" true (p50 <= p95);
  check_bool "p95 <= p99" true (p95 <= p99);
  check_bool "p50 in the right ballpark" true (p50 >= 0.04 && p50 <= 0.07);
  check_bool "p99 caps at max" true (p99 <= 0.1 +. 1e-9)

let test_metrics_counts_match_run () =
  let spec =
    {
      Serve.Loadgen.default_spec with
      Serve.Loadgen.n = 8;
      pattern = Serve.Loadgen.Uniform { gap = 0.004 };
      vocab;
      seed = 21L;
      max_new = 2;
    }
  in
  let sched = run_trace spec in
  let mt = Serve.Scheduler.metrics sched in
  check_int "latency observations = completions" mt.Serve.Metrics.completed
    (Serve.Metrics.hist_count mt.Serve.Metrics.latency);
  check_int "wait observations = admissions" mt.Serve.Metrics.completed
    (Serve.Metrics.hist_count mt.Serve.Metrics.queue_wait);
  check_bool "snapshot is json-ish" true
    (let j = Serve.Metrics.to_json mt in
     String.length j > 2 && j.[0] = '{' && j.[String.length j - 1] = '}')

(* ---------------- bounded caches (satellite) -------------------------- *)

let test_einsum_cache_stats () =
  let s0 = Einsum.cache_stats () in
  let prng = Prng.create 17L in
  let a = Dense.rand prng [ ("x", 5); ("y", 4) ] ~lo:(-1.0) ~hi:1.0 in
  let b = Dense.rand prng [ ("y", 4); ("z", 3) ] ~lo:(-1.0) ~hi:1.0 in
  ignore (Einsum.eval "xy,yz->xz" [ a; b ]);
  let s1 = Einsum.cache_stats () in
  ignore (Einsum.eval "xy,yz->xz" [ a; b ]);
  let s2 = Einsum.cache_stats () in
  check_bool "first eval misses" true (s1.Einsum.misses > s0.Einsum.misses);
  check_bool "second eval hits" true (s2.Einsum.hits > s1.Einsum.hits);
  check_bool "entries bounded by capacity" true
    (s2.Einsum.entries <= s2.Einsum.capacity);
  (* tiny capacity forces LRU evictions *)
  Einsum.set_plan_cache_capacity 1;
  ignore (Einsum.eval "xy,yz->xz" [ a; b ]);
  let c = Dense.rand prng [ ("y", 4); ("w", 2) ] ~lo:(-1.0) ~hi:1.0 in
  ignore (Einsum.eval "xy,yw->xw" [ a; c ]);
  let s3 = Einsum.cache_stats () in
  check_bool "evictions under tiny capacity" true
    (s3.Einsum.evictions > s2.Einsum.evictions);
  check_bool "entries at capacity" true (s3.Einsum.entries <= 1);
  Einsum.set_plan_cache_capacity 512

let test_arena_bounded () =
  Arena.reset Arena.global;
  Arena.set_max_retained 100;
  Arena.with_scratch Arena.global 64 (fun _ -> ());
  Arena.with_scratch Arena.global 32 (fun _ -> ());
  let s = Arena.stats Arena.global in
  check_bool "retained under cap" true (s.Arena.retained_floats <= 100);
  (* a third class pushes past the cap: LRU class evicted *)
  Arena.with_scratch Arena.global 48 (fun _ -> ());
  let s2 = Arena.stats Arena.global in
  check_bool "still under cap" true (s2.Arena.retained_floats <= 100);
  check_bool "evicted a class" true (s2.Arena.evictions > 0);
  (* a buffer alone above the cap is never parked *)
  Arena.with_scratch Arena.global 1000 (fun _ -> ());
  let s3 = Arena.stats Arena.global in
  check_bool "oversized buffer not retained" true
    (s3.Arena.retained_floats <= 100);
  Arena.set_max_retained (1 lsl 22);
  Arena.reset Arena.global

let () =
  Alcotest.run "serve"
    [
      ( "decode",
        [
          Alcotest.test_case "bitwise equals oracle over 1..L steps" `Quick
            test_decode_bitwise_steps;
          Alcotest.test_case "ragged batch bitwise equals oracle" `Quick
            test_decode_bitwise_ragged;
          Alcotest.test_case "greedy generation matches oracle" `Quick
            test_generate_matches_oracle;
          q prop_decode_bitwise_layouts;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "served tokens equal oracle generations" `Quick
            test_scheduler_serves_oracle_generations;
          Alcotest.test_case "deterministic under a fixed trace seed" `Quick
            test_scheduler_determinism;
          Alcotest.test_case "continuous batching retires finished" `Quick
            test_continuous_batching_retirement;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "zero sheds at low load" `Quick
            test_low_load_no_sheds;
          Alcotest.test_case "shedding and degraded batch cap" `Quick
            test_deadline_shedding_and_degradation;
          Alcotest.test_case "queue-full backpressure" `Quick
            test_admission_backpressure;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram counts and quantiles" `Quick
            test_metrics_histogram;
          Alcotest.test_case "run counters match histograms" `Quick
            test_metrics_counts_match_run;
        ] );
      ( "caches",
        [
          Alcotest.test_case "einsum plan cache LRU and stats" `Quick
            test_einsum_cache_stats;
          Alcotest.test_case "arena retention bounded" `Quick
            test_arena_bounded;
        ] );
    ]

(* Tests for the fast CPU numeric backend: the blocked-GEMM kernel against
   a naive triple loop, the einsum fast path against the odometer oracle
   across randomized shapes and storage layouts, parse memoization, and the
   fused executor kernels (full encoder/decoder programs, fast vs naive,
   including the decoder's -inf causal masks and bitwise dropout masks). *)

let q = QCheck_alcotest.to_alcotest
let check_bool = Alcotest.(check bool)

let shuffle_list prng xs =
  (* Deterministic shuffle driven by the test PRNG. *)
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Prng.int prng ~bound:(i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

(* ---------------- GEMM kernel ---------------- *)

let prop_gemm_matches_triple_loop =
  QCheck.Test.make ~name:"blocked gemm equals naive triple loop bitwise"
    ~count:40
    QCheck.(triple (int_range 1 33) (int_range 1 33) (int_range 1 33))
    (fun (m, n, k) ->
      let prng = Prng.create (Int64.of_int ((m * 1681) + (n * 41) + k)) in
      let a = Dense.unsafe_data (Dense.rand prng [ ("m", m); ("k", k) ] ~lo:(-1.0) ~hi:1.0) in
      let b = Dense.unsafe_data (Dense.rand prng [ ("k", k); ("n", n) ] ~lo:(-1.0) ~hi:1.0) in
      let c = Array.make (m * n) 0.0 in
      Gemm.gemm ~m ~n ~k a b c;
      let r = Array.make (m * n) 0.0 in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          for l = 0 to k - 1 do
            r.((i * n) + j) <-
              r.((i * n) + j) +. (a.((i * k) + l) *. b.((l * n) + j))
          done
        done
      done;
      (* Identical accumulation order: exact equality, not a tolerance. *)
      Array.for_all2 (fun x y -> Float.equal x y) c r)

(* ---------------- einsum fast path vs oracle ---------------- *)

(* Batched matmul with every operand and the output in a random storage
   order, so the fast path must pack non-contiguous views. *)
let prop_einsum_matmul_layouts =
  QCheck.Test.make
    ~name:"matmul-shaped einsum: fast equals naive over random layouts"
    ~count:60
    QCheck.(
      quad (int_range 1 7) (int_range 1 7) (int_range 1 7) (int_range 1 5))
    (fun (m, n, k, b) ->
      let seed = Int64.of_int ((m * 10007) + (n * 101) + (k * 11) + b) in
      let prng = Prng.create seed in
      let a_t =
        Dense.rand prng [ ("b", b); ("m", m); ("k", k) ] ~lo:(-1.0) ~hi:1.0
      in
      let b_t =
        Dense.rand prng [ ("b", b); ("k", k); ("n", n) ] ~lo:(-1.0) ~hi:1.0
      in
      let a_t = Dense.permute a_t (shuffle_list prng (Dense.axes a_t)) in
      let b_t = Dense.permute b_t (shuffle_list prng (Dense.axes b_t)) in
      let out = shuffle_list prng [ "b"; "m"; "n" ] in
      let fast = Einsum.contract ~fast:true [ a_t; b_t ] ~out in
      let naive = Einsum.contract ~fast:false [ a_t; b_t ] ~out in
      Dense.max_abs_diff fast naive <= 1e-9)

(* A contraction the matmul classifier cannot take (three operands), plus
   scaling: exercises the cached general plan. *)
let prop_einsum_general_path =
  QCheck.Test.make ~name:"general einsum: fast plan equals naive" ~count:40
    QCheck.(triple (int_range 1 5) (int_range 1 5) (int_range 1 5))
    (fun (x, y, z) ->
      let prng = Prng.create (Int64.of_int ((x * 289) + (y * 17) + z)) in
      let a = Dense.rand prng [ ("a", x); ("b", y) ] ~lo:(-1.0) ~hi:1.0 in
      let b = Dense.rand prng [ ("b", y); ("c", z) ] ~lo:(-1.0) ~hi:1.0 in
      let c = Dense.rand prng [ ("c", z); ("d", x) ] ~lo:(-1.0) ~hi:1.0 in
      let fast =
        Einsum.contract ~scale:0.5 ~fast:true [ a; b; c ] ~out:[ "a"; "d" ]
      in
      let naive =
        Einsum.contract ~scale:0.5 ~fast:false [ a; b; c ] ~out:[ "a"; "d" ]
      in
      Dense.max_abs_diff fast naive <= 1e-9)

(* Vector-shaped corner cases: size-1 m/n/k groups, missing batch axes, and
   pure reductions must all classify (or fall back) correctly. *)
let test_einsum_corner_shapes () =
  let prng = Prng.create 5L in
  let check spec inputs out =
    let fast = Einsum.contract ~fast:true inputs ~out in
    let naive = Einsum.contract ~fast:false inputs ~out in
    check_bool spec true (Dense.max_abs_diff fast naive <= 1e-9)
  in
  let v = Dense.rand prng [ ("k", 9) ] ~lo:(-1.0) ~hi:1.0 in
  let w = Dense.rand prng [ ("k", 9) ] ~lo:(-1.0) ~hi:1.0 in
  check "dot" [ v; w ] [];
  let mt = Dense.rand prng [ ("m", 4); ("k", 9) ] ~lo:(-1.0) ~hi:1.0 in
  check "matvec" [ mt; w ] [ "m" ];
  check "outer" [ v; Dense.rand prng [ ("n", 3) ] ~lo:(-1.0) ~hi:1.0 ]
    [ "k"; "n" ];
  check "reduce all" [ mt ] [];
  check "transpose-ish" [ mt ] [ "k"; "m" ]

let test_parse_memoized () =
  let a = Einsum.parse "phi,ibj->phbj" in
  let b = Einsum.parse "phi,ibj->phbj" in
  check_bool "same spec string returns the memoized value" true (a == b)

(* ---------------- fused executor kernels ---------------- *)

(* The strongest oracle: the *unfused* program on the naive backend vs the
   *fused* program on the fast backend, compared container by container.
   Covers the GEMM einsum path, every fused chain and reduction kernel,
   and the deterministic dropout masks in one sweep. *)
let envs_agree ~name program name_table inputs =
  let fused = Substation.Fusion.fuse ~name_table program in
  let env_naive =
    Fastmode.with_naive (fun () -> Ops.Program.run program inputs)
  in
  let env_fast =
    Fastmode.with_mode true (fun () -> Ops.Program.run fused inputs)
  in
  Hashtbl.iter
    (fun container t_naive ->
      match Hashtbl.find_opt env_fast container with
      | None ->
          (* Fused dead intermediates are legitimately absent. *)
          ()
      | Some t_fast ->
          let d = Dense.max_abs_diff t_naive t_fast in
          if d > 1e-9 then
            Alcotest.failf "%s: container %s differs by %g" name container d)
    env_naive

let layer_inputs hp seed =
  let prng = Prng.create seed in
  let params = Transformer.Params.init hp in
  let x = Transformer.Params.random_input hp prng in
  let d_y = Transformer.Params.random_cotangent hp prng in
  ("x", x) :: ("d_y", d_y) :: params

let test_encoder_fast_vs_naive () =
  let hp = Transformer.Hparams.tiny in
  envs_agree ~name:"encoder" (Transformer.Encoder.program hp)
    Transformer.Encoder.kernel_names (layer_inputs hp 11L)

(* Decoder: GELU feed-forward and causal softmax, whose additive mask
   materializes -inf logits — the fast softmax must reproduce them. *)
let test_decoder_fast_vs_naive () =
  let hp = Transformer.Hparams.tiny in
  envs_agree ~name:"decoder" (Transformer.Decoder.program hp)
    Transformer.Decoder.kernel_names (layer_inputs hp 13L)

(* A wider, rectangular configuration (seq <> proj <> ff) so no two axis
   extents collide. *)
let test_encoder_rectangular () =
  let hp =
    { Transformer.Hparams.tiny with batch = 3; seq = 5; heads = 2; proj = 3 }
  in
  envs_agree ~name:"encoder rectangular" (Transformer.Encoder.program hp)
    Transformer.Encoder.kernel_names (layer_inputs hp 17L)

let test_dropout_masks_bitwise () =
  let hp = Transformer.Hparams.tiny in
  let program = Transformer.Encoder.program hp in
  let fused =
    Substation.Fusion.fuse ~name_table:Transformer.Encoder.kernel_names
      program
  in
  let inputs = layer_inputs hp 11L in
  let env_naive =
    Fastmode.with_naive (fun () -> Ops.Program.run program inputs)
  in
  let env_fast =
    Fastmode.with_mode true (fun () -> Ops.Program.run fused inputs)
  in
  let masks = ref 0 in
  Hashtbl.iter
    (fun container t_naive ->
      if
        container = "attn_mask"
        || (String.length container >= 4 && String.sub container 0 4 = "mask")
      then
        match Hashtbl.find_opt env_fast container with
        | None -> ()
        | Some t_fast ->
            incr masks;
            let t_fast = Dense.align t_fast t_naive in
            check_bool
              (Printf.sprintf "mask %s bitwise equal" container)
              true
              (Array.for_all2 Float.equal
                 (Dense.unsafe_data t_naive)
                 (Dense.unsafe_data t_fast)))
    env_naive;
  check_bool "at least one dropout mask compared" true (!masks > 0)

(* ---------------- standalone reduction kernels ---------------- *)

(* Softmax over a permuted-layout input with explicit -inf entries (an
   additive mask applied upstream), fast vs naive. *)
let prop_softmax_masked_layouts =
  QCheck.Test.make
    ~name:"softmax kernel: permuted layouts and -inf entries" ~count:40
    QCheck.(pair (int_range 2 6) (int_range 2 6))
    (fun (j, k) ->
      let prng = Prng.create (Int64.of_int ((j * 131) + k)) in
      let dims = [ ("h", 2); ("j", j); ("k", k) ] in
      let x = Dense.rand prng dims ~lo:(-2.0) ~hi:2.0 in
      (* Mask a strict minority of each row to -inf (never the whole row). *)
      let x =
        Dense.init dims (fun idx ->
            let kv = List.assoc "k" idx in
            if kv > 0 && (kv + List.assoc "j" idx) mod 3 = 0 then neg_infinity
            else Dense.get x idx)
      in
      let x = Dense.permute x (shuffle_list prng (Dense.axes x)) in
      let op =
        Ops.Normalization.softmax ~name:"sm" ~x:"x" ~out:"y" dims ~axis:"k"
          ~prescale:0.5 ()
      in
      let run fast =
        let env = Ops.Op.env_of_list [ ("x", x) ] in
        Fastmode.with_mode fast (fun () -> op.Ops.Op.run env);
        Ops.Op.lookup env "y"
      in
      Dense.max_abs_diff (run true) (run false) <= 1e-9)

let prop_layernorm_layouts =
  QCheck.Test.make ~name:"layernorm kernel family over permuted layouts"
    ~count:40
    QCheck.(pair (int_range 2 8) (int_range 2 6))
    (fun (i, b) ->
      let prng = Prng.create (Int64.of_int ((i * 257) + b)) in
      let dims = [ ("i", i); ("b", b); ("j", 3) ] in
      let x = Dense.rand prng dims ~lo:(-2.0) ~hi:2.0 in
      let x = Dense.permute x (shuffle_list prng (Dense.axes x)) in
      let gamma = Dense.rand prng [ ("i", i) ] ~lo:0.5 ~hi:1.5 in
      let beta = Dense.rand prng [ ("i", i) ] ~lo:(-0.5) ~hi:0.5 in
      let dy = Dense.rand prng dims ~lo:(-1.0) ~hi:1.0 in
      let dy = Dense.permute dy (shuffle_list prng (Dense.axes dy)) in
      let fwd =
        Ops.Normalization.layernorm ~name:"ln" ~x:"x" ~gamma:"g" ~beta:"be"
          ~out:"y" ~mean:"m" ~istd:"s" dims ~axis:"i" ~eps:1e-5 ()
      in
      let dx =
        Ops.Normalization.layernorm_dx ~name:"ln_dx" ~dy:"dy" ~x:"x" ~gamma:"g"
          ~mean:"m" ~istd:"s" ~out:"dx" dims ~axis:"i"
      in
      let dw =
        Ops.Normalization.layernorm_dw ~name:"ln_dw" ~dy:"dy" ~x:"x" ~mean:"m"
          ~istd:"s" ~dgamma:"dg" ~dbeta:"db" dims ~axis:"i"
      in
      let run fast =
        let env =
          Ops.Op.env_of_list
            [ ("x", x); ("g", gamma); ("be", beta); ("dy", dy) ]
        in
        Fastmode.with_mode fast (fun () ->
            fwd.Ops.Op.run env;
            dx.Ops.Op.run env;
            dw.Ops.Op.run env);
        List.map (Ops.Op.lookup env) [ "y"; "m"; "s"; "dx"; "dg"; "db" ]
      in
      List.for_all2
        (fun a b -> Dense.max_abs_diff a b <= 1e-9)
        (run true) (run false))

let () =
  Alcotest.run "fastpath"
    [
      ("gemm", [ q prop_gemm_matches_triple_loop ]);
      ( "einsum",
        [
          q prop_einsum_matmul_layouts;
          q prop_einsum_general_path;
          Alcotest.test_case "corner shapes" `Quick test_einsum_corner_shapes;
          Alcotest.test_case "parse memoized" `Quick test_parse_memoized;
        ] );
      ( "fused programs",
        [
          Alcotest.test_case "encoder fast=naive" `Quick
            test_encoder_fast_vs_naive;
          Alcotest.test_case "decoder fast=naive (causal -inf)" `Quick
            test_decoder_fast_vs_naive;
          Alcotest.test_case "rectangular encoder" `Quick
            test_encoder_rectangular;
          Alcotest.test_case "dropout masks bitwise" `Quick
            test_dropout_masks_bitwise;
        ] );
      ( "reduction kernels",
        [ q prop_softmax_masked_layouts; q prop_layernorm_layouts ] );
    ]

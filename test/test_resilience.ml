(* Tests for the resilient execution runtime: pool supervision (deadlines,
   cancellation tokens, structured worker-failure capture, respawn),
   guarded fast kernels with oracle fallback (crash / NaN-corruption /
   hang recovery, circuit breakers, quarantine), the executor's
   resilience policy and run report, and crash-safe training checkpoints
   that resume bitwise-identically. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------------- pool supervision ---------------- *)

let test_deadline_exceeded () =
  match
    Pool.with_deadline ~scope:"slow loop" 0.01 (fun () ->
        let t0 = Pool.now () in
        while Pool.now () -. t0 < 1.0 do
          Pool.check_cancel ();
          Unix.sleepf 0.002
        done)
  with
  | () -> Alcotest.fail "deadline never fired"
  | exception Pool.Deadline_exceeded { label; overrun } ->
      check_string "deadline names its scope" "slow loop" label;
      check_bool "overrun is non-negative" true (overrun >= 0.0)

let test_deadline_nested_min () =
  (* The inner 10s budget must not extend the outer 10ms one. *)
  match
    Pool.with_deadline 0.01 (fun () ->
        Pool.with_deadline ~scope:"inner" 10.0 (fun () ->
            let t0 = Pool.now () in
            while Pool.now () -. t0 < 1.0 do
              Pool.check_cancel ();
              Unix.sleepf 0.002
            done))
  with
  | () -> Alcotest.fail "nested deadline never fired"
  | exception Pool.Deadline_exceeded _ -> ()

let test_deadline_rejects_nonpositive () =
  Alcotest.check_raises "zero budget rejected"
    (Invalid_argument "Pool.with_deadline: budget must be positive")
    (fun () -> Pool.with_deadline 0.0 (fun () -> ()))

let test_token_cancels_region () =
  Pool.with_domains 2 (fun () ->
      let t = Pool.create_token () in
      match
        Pool.with_token ~scope:"cancelled job" t (fun () ->
            Pool.parallel_for ~label:"cancellable" ~chunks:8 ~start:0
              ~finish:8_000_000
              (fun lo _hi -> if lo = 0 then Pool.cancel t))
      with
      | () ->
          (* All chunks may have been claimed before the cancel landed;
             the token must still read as cancelled. *)
          check_bool "token observed" true (Pool.cancelled t)
      | exception Pool.Cancelled -> check_bool "token observed" true (Pool.cancelled t))

let test_worker_failure_captured () =
  Pool.with_domains 4 (fun () ->
      let faults = Gpu.Faults.make_exec ~seed:3L ~chunk_crash_rate:1.0 () in
      let respawns_before = Pool.respawn_count () in
      (match
         Gpu.Faults.with_exec_faults faults (fun () ->
             Pool.parallel_for ~label:"doomed region" ~chunks:4 ~start:0
               ~finish:4096
               (fun _lo _hi -> ()))
       with
      | () -> Alcotest.fail "injected chunk crash did not propagate"
      | exception Execfault.Injected_crash { chunk; _ } ->
          check_bool "crash carries a chunk id" true (chunk >= 0));
      (match Pool.last_failure () with
      | None -> Alcotest.fail "no structured failure recorded"
      | Some f ->
          check_string "failure names the job" "doomed region" f.Pool.f_label;
          check_bool "failure records the chunk" true (f.Pool.f_chunk >= 0));
      check_bool "pool respawned after the poisoned job" true
        (Pool.respawn_count () > respawns_before);
      (* The pool must be healthy again: a clean region still works. *)
      let total =
        Pool.parallel_for_reduce ~label:"after respawn" ~chunks:4 ~start:0
          ~finish:100 ~init:0 ~combine:( + )
          (fun lo hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do s := !s + i done;
            !s)
      in
      check_int "pool works after respawn" 4950 total)

(* ---------------- guarded kernels ---------------- *)

let bitwise_equal a b = Dense.max_abs_diff a b = 0.0

let mk_mat prng axes dims =
  Dense.rand prng (List.combine axes dims) ~lo:(-1.0) ~hi:1.0

let test_crash_falls_back_bitwise () =
  Guard.reset ();
  let prng = Prng.create 17L in
  let a = mk_mat prng [ "b"; "i"; "k" ] [ 3; 8; 16 ] in
  let b = mk_mat prng [ "b"; "k"; "j" ] [ 3; 16; 8 ] in
  let oracle = Fastmode.with_mode false (fun () -> Einsum.eval "bik,bkj->bij" [ a; b ]) in
  let faults = Gpu.Faults.make_exec ~seed:5L ~crash_rate:1.0 () in
  let faulted =
    Gpu.Faults.with_exec_faults faults (fun () ->
        Fastmode.with_mode true (fun () -> Einsum.eval "bik,bkj->bij" [ a; b ]))
  in
  check_bool "fallback result is the oracle, bitwise" true
    (bitwise_equal oracle faulted);
  let q = Guard.quarantine () in
  check_bool "quarantine recorded the crash" true
    (List.exists
       (fun (e : Guard.entry) ->
         e.Guard.q_kernel = "einsum.matmul" && e.Guard.q_reason = "injected crash")
       q);
  Guard.reset ()

let test_breaker_trips_after_repeated_failures () =
  Guard.reset ();
  let prng = Prng.create 23L in
  let a = mk_mat prng [ "i"; "k" ] [ 4; 4 ] in
  let b = mk_mat prng [ "k"; "j" ] [ 4; 4 ] in
  let faults = Gpu.Faults.make_exec ~seed:9L ~crash_rate:1.0 () in
  Gpu.Faults.with_exec_faults faults (fun () ->
      Fastmode.with_mode true (fun () ->
          for _ = 1 to 5 do
            ignore (Einsum.eval "ik,kj->ij" [ a; b ])
          done));
  check_bool "breaker open after repeated crashes" true
    (Guard.tripped "einsum.matmul");
  (* Breaker-open launches route straight to the oracle, even clean. *)
  let oracle = Fastmode.with_mode false (fun () -> Einsum.eval "ik,kj->ij" [ a; b ]) in
  let routed = Fastmode.with_mode true (fun () -> Einsum.eval "ik,kj->ij" [ a; b ]) in
  check_bool "breaker-open result is the oracle" true (bitwise_equal oracle routed);
  Guard.reset ();
  check_bool "reset closes the breaker" false (Guard.tripped "einsum.matmul")

let test_nan_corruption_recovered () =
  Guard.reset ();
  let prng = Prng.create 31L in
  let a = mk_mat prng [ "i"; "k" ] [ 6; 6 ] in
  let b = mk_mat prng [ "k"; "j" ] [ 6; 6 ] in
  let oracle = Fastmode.with_mode false (fun () -> Einsum.eval "ik,kj->ij" [ a; b ]) in
  let faults = Gpu.Faults.make_exec ~seed:2L ~corrupt_rate:1.0 () in
  let healed =
    Guard.with_level Guard.Nan (fun () ->
        Gpu.Faults.with_exec_faults faults (fun () ->
            Fastmode.with_mode true (fun () -> Einsum.eval "ik,kj->ij" [ a; b ])))
  in
  check_bool "NaN/Inf corruption healed to the oracle, bitwise" true
    (bitwise_equal oracle healed);
  Guard.reset ()

let test_fallback_disabled_raises () =
  Guard.reset ();
  let prng = Prng.create 37L in
  let a = mk_mat prng [ "i"; "k" ] [ 4; 4 ] in
  let b = mk_mat prng [ "k"; "j" ] [ 4; 4 ] in
  let faults = Gpu.Faults.make_exec ~seed:2L ~corrupt_rate:1.0 () in
  (match
     Guard.with_level Guard.Nan (fun () ->
         Guard.with_fallback false (fun () ->
             Gpu.Faults.with_exec_faults faults (fun () ->
                 Fastmode.with_mode true (fun () ->
                     Einsum.eval "ik,kj->ij" [ a; b ]))))
   with
  | _ -> Alcotest.fail "disabled fallback should raise"
  | exception Guard.Guard_fault { kernel; _ } ->
      check_string "fault names the kernel" "einsum.matmul" kernel);
  Guard.reset ()

let test_guard_off_propagates () =
  Guard.reset ();
  let prng = Prng.create 41L in
  let a = mk_mat prng [ "i"; "k" ] [ 4; 4 ] in
  let b = mk_mat prng [ "k"; "j" ] [ 4; 4 ] in
  let faults = Gpu.Faults.make_exec ~seed:5L ~crash_rate:1.0 () in
  (match
     Guard.with_level Guard.Off (fun () ->
         Gpu.Faults.with_exec_faults faults (fun () ->
             Fastmode.with_mode true (fun () -> Einsum.eval "ik,kj->ij" [ a; b ])))
   with
  | _ -> Alcotest.fail "unguarded crash should propagate"
  | exception Execfault.Injected_crash _ -> ());
  Guard.reset ()

let test_hang_times_out_to_fallback () =
  Guard.reset ();
  let prng = Prng.create 43L in
  let a = mk_mat prng [ "i"; "k" ] [ 4; 4 ] in
  let b = mk_mat prng [ "k"; "j" ] [ 4; 4 ] in
  let oracle = Fastmode.with_mode false (fun () -> Einsum.eval "ik,kj->ij" [ a; b ]) in
  let faults = Gpu.Faults.make_exec ~seed:11L ~hang_rate:1.0 ~hang_seconds:0.5 () in
  let t0 = Pool.now () in
  let healed =
    Guard.with_kernel_timeout (Some 0.01) (fun () ->
        Gpu.Faults.with_exec_faults faults (fun () ->
            Fastmode.with_mode true (fun () -> Einsum.eval "ik,kj->ij" [ a; b ])))
  in
  check_bool "hang cut short by the kernel budget" true (Pool.now () -. t0 < 0.4);
  check_bool "timed-out kernel healed to the oracle" true
    (bitwise_equal oracle healed);
  check_bool "quarantine recorded the timeout" true
    (List.exists
       (fun (e : Guard.entry) -> e.Guard.q_reason = "kernel timeout")
       (Guard.quarantine ()));
  Guard.reset ()

(* The streaming attention kernel runs under the same guard: a crash
   inside the fused interior heals to the naive einsum + masked-softmax
   chain (whose own crashed einsums heal to their oracles), so the run
   lands bitwise on the all-naive result and the quarantine names the
   streaming kernel. *)
let test_flashattn_crash_heals () =
  Guard.reset ();
  let hp =
    { Transformer.Hparams.tiny with batch = 2; seq = 12; heads = 2; proj = 8 }
  in
  let prng = Prng.create 53L in
  let q =
    mk_mat prng [ "p"; "h"; "b"; "j" ]
      [ hp.Transformer.Hparams.proj; hp.Transformer.Hparams.heads;
        hp.Transformer.Hparams.batch; hp.Transformer.Hparams.seq ]
  in
  let k =
    mk_mat prng [ "p"; "h"; "b"; "k" ]
      [ hp.Transformer.Hparams.proj; hp.Transformer.Hparams.heads;
        hp.Transformer.Hparams.batch; hp.Transformer.Hparams.seq ]
  in
  let v =
    mk_mat prng [ "w"; "h"; "b"; "k" ]
      [ hp.Transformer.Hparams.proj; hp.Transformer.Hparams.heads;
        hp.Transformer.Hparams.batch; hp.Transformer.Hparams.seq ]
  in
  let oracle =
    Fastmode.with_mode false (fun () ->
        Transformer.Mha.context hp ~causal:true ~q ~k ~v ())
  in
  let faults = Gpu.Faults.make_exec ~seed:19L ~crash_rate:1.0 () in
  let healed =
    Gpu.Faults.with_exec_faults faults (fun () ->
        Fastmode.with_mode true (fun () ->
            Transformer.Mha.context hp ~causal:true ~q ~k ~v ()))
  in
  check_bool "crashed attention kernel healed to the naive chain, bitwise"
    true
    (bitwise_equal oracle healed);
  check_bool "quarantine names the streaming kernel" true
    (List.exists
       (fun (e : Guard.entry) ->
         e.Guard.q_kernel = "flashattn.context"
         && e.Guard.q_reason = "injected crash")
       (Guard.quarantine ()));
  Guard.reset ()

(* ---------------- executor resilience matrix ---------------- *)

let encoder_hp =
  { Transformer.Hparams.tiny with batch = 2; seq = 8; embed = 16; heads = 2;
    proj = 8; ff = 32; dropout_p = 0.1 }

let encoder_plan () =
  let program =
    Substation.Fusion.fuse ~name_table:Transformer.Encoder.kernel_names
      (Transformer.Encoder.program encoder_hp)
  in
  {
    Frameworks.Executor.name = "resilience-test";
    program;
    kernels_forward = [];
    kernels_backward = [];
    dispatch_overhead = 0.0;
  }

let encoder_inputs () =
  let prng = Prng.create 47L in
  let params = Transformer.Params.init encoder_hp in
  let x = Transformer.Params.random_input encoder_hp prng in
  let d_y = Transformer.Params.random_cotangent encoder_hp prng in
  ("x", x) :: ("d_y", d_y) :: params

let envs_bitwise_equal a b =
  check_int "same containers materialized" (Hashtbl.length a) (Hashtbl.length b);
  Hashtbl.iter
    (fun c t ->
      match Hashtbl.find_opt b c with
      | None -> Alcotest.failf "container %s missing" c
      | Some t' ->
          let d = Dense.max_abs_diff t t' in
          if d <> 0.0 then
            Alcotest.failf "container %s differs by %g (not bitwise)" c d)
    a

(* The acceptance matrix: under a crash-every-kernel campaign, the guard
   routes every fast kernel to the oracle, so the faulted fast run is
   bitwise identical to the clean naive-oracle run — and the run report
   lists the engaged fallbacks. Checked serial and parallel. *)
let run_recovery_matrix ~domains () =
  Pool.with_domains domains (fun () ->
      Guard.reset ();
      let plan = encoder_plan () in
      let inputs = encoder_inputs () in
      let clean_naive =
        Frameworks.Executor.run_functional ~check:Frameworks.Executor.No_check
          ~fast:false plan inputs
      in
      let faults = Gpu.Faults.make_exec ~seed:13L ~crash_rate:1.0 () in
      let resilience =
        { Frameworks.Executor.default_resilience with guard = Guard.Finite }
      in
      let faulted, report =
        Gpu.Faults.with_exec_faults faults (fun () ->
            Frameworks.Executor.run_resilient ~resilience ~fast:true plan inputs)
      in
      envs_bitwise_equal clean_naive faulted;
      check_bool "run report lists engaged fallbacks" true
        (report.Frameworks.Executor.rr_fallbacks <> []);
      List.iter
        (fun (e : Guard.event) ->
          check_bool "fallback reasons are crash or open breaker" true
            (e.Guard.e_reason = "injected crash"
            || e.Guard.e_reason = "circuit breaker open"))
        report.Frameworks.Executor.rr_fallbacks;
      check_bool "quarantine populated" true
        (report.Frameworks.Executor.rr_quarantine <> []);
      Guard.reset ())

let test_recovery_matrix_serial () = run_recovery_matrix ~domains:1 ()
let test_recovery_matrix_parallel () = run_recovery_matrix ~domains:4 ()

(* A mixed campaign (crashes + corruption + hangs at partial rates) must
   complete under the policy and stay within the fused-vs-unfused
   numerical agreement bound of the clean run. *)
let test_mixed_campaign_completes () =
  Guard.reset ();
  let plan = encoder_plan () in
  let inputs = encoder_inputs () in
  let clean =
    Frameworks.Executor.run_functional ~check:Frameworks.Executor.No_check
      ~fast:true plan inputs
  in
  let faults =
    Gpu.Faults.make_exec ~seed:29L ~crash_rate:0.3 ~corrupt_rate:0.3
      ~hang_rate:0.1 ~hang_seconds:0.2 ()
  in
  let resilience =
    {
      Frameworks.Executor.default_resilience with
      guard = Guard.Finite;
      kernel_timeout = Some 0.01;
      retries = 2;
    }
  in
  let faulted, report =
    Gpu.Faults.with_exec_faults faults (fun () ->
        Frameworks.Executor.run_resilient ~resilience ~fast:true plan inputs)
  in
  check_bool "mixed campaign engaged at least one fallback" true
    (report.Frameworks.Executor.rr_fallbacks <> []);
  Hashtbl.iter
    (fun c t ->
      match Hashtbl.find_opt faulted c with
      | None -> Alcotest.failf "container %s missing" c
      | Some t' ->
          let d = Dense.max_abs_diff t t' in
          if d > 1e-9 then
            Alcotest.failf "container %s differs by %g under faults" c d)
    clean;
  Guard.reset ()

let test_run_deadline_propagates () =
  Guard.reset ();
  let plan = encoder_plan () in
  let inputs = encoder_inputs () in
  let faults =
    Gpu.Faults.make_exec ~seed:7L ~hang_rate:1.0 ~hang_seconds:10.0 ()
  in
  let resilience =
    {
      Frameworks.Executor.default_resilience with
      deadline = Some 0.05;
      retries = 0;
    }
  in
  (match
     Gpu.Faults.with_exec_faults faults (fun () ->
         Frameworks.Executor.run_resilient ~resilience ~fast:true plan inputs)
   with
  | _ -> Alcotest.fail "blown run deadline should propagate"
  | exception Pool.Deadline_exceeded _ -> ());
  Guard.reset ()

(* ---------------- training checkpoints ---------------- *)

let train_hp =
  { Transformer.Hparams.tiny with batch = 2; seq = 6; embed = 12; heads = 2;
    proj = 6; ff = 24; dropout_p = 0.0 }

let fixed_tokens () =
  Transformer.Training.random_batch (Prng.create 99L) ~vocab:13
    ~batch:train_hp.Transformer.Hparams.batch
    ~seq:train_hp.Transformer.Hparams.seq

let logits_of m =
  (Transformer.Model.forward m ~tokens:(fixed_tokens ())).Transformer.Model.logits

let test_checkpoint_resume_bitwise optimizer () =
  let ckpt = Filename.temp_file "substation-train" ".ckpt" in
  Sys.remove ckpt;
  let steps = 5 and lr = 0.05 in
  (* Uninterrupted reference run. *)
  let m_ref = Transformer.Model.create ~n_layers:2 ~vocab:13 train_hp in
  let h_ref =
    Transformer.Training.train ~optimizer m_ref ~steps ~lr (Prng.create 7L)
  in
  (* Interrupted run: crash every step, resume until it completes. *)
  let m = Transformer.Model.create ~n_layers:2 ~vocab:13 train_hp in
  let prng = Prng.create 7L in
  let resumes = ref 0 in
  let rec go () =
    match
      Transformer.Training.train ~optimizer ~checkpoint:ckpt ~interrupt_after:1
        m ~steps ~lr prng
    with
    | h -> h
    | exception Transformer.Training.Interrupted path ->
        check_string "Interrupted carries the checkpoint path" ckpt path;
        check_bool "checkpoint on disk at the crash point" true
          (Sys.file_exists ckpt);
        incr resumes;
        go ()
  in
  let h = go () in
  check_bool "run was actually interrupted and resumed" true (!resumes >= steps - 1);
  check_bool "checkpoint removed on completion" false (Sys.file_exists ckpt);
  Array.iteri
    (fun i l ->
      check_bool
        (Printf.sprintf "loss %d bitwise equal" i)
        true
        (Int64.equal (Int64.bits_of_float l) (Int64.bits_of_float h.Transformer.Training.losses.(i))))
    h_ref.Transformer.Training.losses;
  check_bool "final model bitwise identical to uninterrupted run" true
    (Dense.max_abs_diff (logits_of m_ref) (logits_of m) = 0.0)

let test_checkpoint_rejects_mismatched_run () =
  let ckpt = Filename.temp_file "substation-train" ".ckpt" in
  Sys.remove ckpt;
  let m = Transformer.Model.create ~n_layers:2 ~vocab:13 train_hp in
  (match
     Transformer.Training.train ~checkpoint:ckpt ~interrupt_after:1 m ~steps:4
       ~lr:0.05 (Prng.create 7L)
   with
  | _ -> Alcotest.fail "expected an interrupt"
  | exception Transformer.Training.Interrupted _ -> ());
  (* Same path, different run shape: must be rejected, not resumed. *)
  (match
     Transformer.Training.train ~checkpoint:ckpt m ~steps:9 ~lr:0.05
       (Prng.create 7L)
   with
  | _ -> Alcotest.fail "mismatched checkpoint accepted"
  | exception Invalid_argument _ -> ());
  Sys.remove ckpt

(* ---------------- arena hygiene ---------------- *)

let test_arena_reset_and_double_release () =
  let arena = Arena.create () in
  Arena.with_scratch arena 64 (fun buf ->
      buf.(0) <- 1.0;
      (* Resetting mid-borrow must not break the protected release. *)
      Arena.reset arena);
  Arena.with_scratch arena 64 (fun buf -> buf.(1) <- 2.0);
  (* A fresh borrow after reset + re-pool still works and is sized right. *)
  Arena.with_scratch arena 64 (fun buf ->
      check_int "scratch length preserved" 64 (Array.length buf))

let () =
  Alcotest.run "resilience"
    [
      ( "pool supervision",
        [
          Alcotest.test_case "deadline exceeded" `Quick test_deadline_exceeded;
          Alcotest.test_case "nested deadlines take the min" `Quick
            test_deadline_nested_min;
          Alcotest.test_case "non-positive budget rejected" `Quick
            test_deadline_rejects_nonpositive;
          Alcotest.test_case "token cancels a region" `Quick
            test_token_cancels_region;
          Alcotest.test_case "worker failure captured, pool respawns" `Quick
            test_worker_failure_captured;
        ] );
      ( "guarded kernels",
        [
          Alcotest.test_case "crash falls back to oracle bitwise" `Quick
            test_crash_falls_back_bitwise;
          Alcotest.test_case "circuit breaker trips and resets" `Quick
            test_breaker_trips_after_repeated_failures;
          Alcotest.test_case "NaN corruption healed" `Quick
            test_nan_corruption_recovered;
          Alcotest.test_case "disabled fallback raises" `Quick
            test_fallback_disabled_raises;
          Alcotest.test_case "guard off propagates crashes" `Quick
            test_guard_off_propagates;
          Alcotest.test_case "hang times out to fallback" `Quick
            test_hang_times_out_to_fallback;
          Alcotest.test_case "streaming attention crash heals" `Quick
            test_flashattn_crash_heals;
        ] );
      ( "executor resilience",
        [
          Alcotest.test_case "recovery matrix, serial" `Quick
            test_recovery_matrix_serial;
          Alcotest.test_case "recovery matrix, parallel" `Quick
            test_recovery_matrix_parallel;
          Alcotest.test_case "mixed campaign completes" `Quick
            test_mixed_campaign_completes;
          Alcotest.test_case "run deadline propagates" `Quick
            test_run_deadline_propagates;
        ] );
      ( "training checkpoints",
        [
          Alcotest.test_case "interrupt/resume bitwise (SGD)" `Quick
            (test_checkpoint_resume_bitwise Transformer.Training.Sgd);
          Alcotest.test_case "interrupt/resume bitwise (Adam)" `Quick
            (test_checkpoint_resume_bitwise Transformer.Training.Adam);
          Alcotest.test_case "mismatched checkpoint rejected" `Quick
            test_checkpoint_rejects_mismatched_run;
        ] );
      ( "arena hygiene",
        [
          Alcotest.test_case "reset and double-release safe" `Quick
            test_arena_reset_and_double_release;
        ] );
    ]
